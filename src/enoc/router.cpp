#include "enoc/router.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace sctm::enoc {
namespace {

constexpr int kInfiniteCredits = std::numeric_limits<int>::max() / 2;

std::unique_ptr<Arbiter> make_arbiter(ArbiterKind kind, int width) {
  if (kind == ArbiterKind::kMatrix) {
    return std::make_unique<MatrixArbiter>(width);
  }
  return std::make_unique<RoundRobinArbiter>(width);
}

}  // namespace

Router::Router(Simulator& sim, std::string name, NodeId id,
               const noc::Topology& topo, const EnocParams& params,
               RouterCallbacks& callbacks)
    : Component(sim, std::move(name)),
      id_(id),
      topo_(topo),
      params_(params),
      cb_(callbacks),
      ports_(topo.port_count()),
      vcount_(params.total_vcs()),
      needs_dateline_(topo.kind() != noc::Topology::Kind::kMesh),
      stat_buffer_writes_(counter("buffer_writes")),
      stat_buffer_reads_(counter("buffer_reads")),
      stat_xbar_(counter("xbar_traversals")),
      stat_link_(counter("link_traversals")),
      stat_sa_grants_(counter("sa_grants")),
      stat_va_grants_(counter("va_grants")),
      stat_rc_(counter("rc_count")) {
  params_.validate(needs_dateline_);
  inputs_.resize(static_cast<std::size_t>(ports_) * vcount_);
  outputs_.resize(static_cast<std::size_t>(ports_) * vcount_);
  for (auto& ivc : inputs_) {
    ivc.fifo.reserve(static_cast<std::size_t>(params_.buffer_depth));
  }
  for (int p = 0; p < ports_; ++p) {
    const bool ejection = (p == topo_.local_port());
    for (int v = 0; v < vcount_; ++v) {
      out_vc(p, v).credits = ejection ? kInfiniteCredits : params_.buffer_depth;
    }
    sa_input_arb_.push_back(make_arbiter(params_.arbiter, vcount_));
    sa_output_arb_.push_back(make_arbiter(params_.arbiter, ports_));
    va_arb_.push_back(make_arbiter(params_.arbiter, ports_ * vcount_));
  }
  req_vc_.resize(static_cast<std::size_t>(vcount_));
  req_port_.resize(static_cast<std::size_t>(ports_));
  req_pv_.resize(static_cast<std::size_t>(ports_) * vcount_);
  sa_nominee_.resize(static_cast<std::size_t>(ports_));
  sa_winner_.resize(static_cast<std::size_t>(ports_));
}

void Router::reset() {
  for (auto& ivc : inputs_) {
    ivc.fifo.clear();
    ivc.out_port = -1;
    ivc.out_vc = -1;
    ivc.next_dateline = 0;
  }
  for (int p = 0; p < ports_; ++p) {
    const bool ejection = (p == topo_.local_port());
    for (int v = 0; v < vcount_; ++v) {
      auto& ovc = out_vc(p, v);
      ovc.credits = ejection ? kInfiniteCredits : params_.buffer_depth;
      ovc.busy = false;
    }
    sa_input_arb_[static_cast<std::size_t>(p)]->reset();
    sa_output_arb_[static_cast<std::size_t>(p)]->reset();
    va_arb_[static_cast<std::size_t>(p)]->reset();
  }
  inj_queue_.clear();
  inj_active_vc_ = -1;
  inj_active_msg_ = kInvalidMsg;
}

int Router::vnet_of(noc::MsgClass cls) const {
  if (params_.vnets < 2) return 0;
  switch (cls) {
    case noc::MsgClass::kRequest:
    case noc::MsgClass::kControl:
      return 0;
    case noc::MsgClass::kReply:
    case noc::MsgClass::kData:
      return 1;
  }
  return 0;
}

std::pair<int, int> Router::allowed_vcs(noc::MsgClass cls,
                                        std::uint8_t dateline) const {
  const int base = vnet_of(cls) * params_.vcs_per_vnet;
  if (!needs_dateline_) return {base, base + params_.vcs_per_vnet};
  const int half = params_.vcs_per_vnet / 2;
  const int lo = base + (dateline ? half : 0);
  return {lo, lo + half};
}

bool Router::is_wrap_link(int out_dir) const {
  if (topo_.kind() == noc::Topology::Kind::kMesh) return false;
  if (out_dir >= topo_.radix()) return false;
  const noc::Coord c = topo_.coords(id_);
  if (topo_.kind() == noc::Topology::Kind::kRing) {
    const int n = topo_.node_count();
    return (out_dir == noc::kRingCw && id_ == n - 1) ||
           (out_dir == noc::kRingCcw && id_ == 0);
  }
  switch (out_dir) {
    case noc::kEast: return c.x == topo_.width() - 1;
    case noc::kWest: return c.x == 0;
    case noc::kSouth: return c.y == topo_.height() - 1;
    case noc::kNorth: return c.y == 0;
  }
  return false;
}

int Router::axis_of(int dir) {
  return (dir == noc::kEast || dir == noc::kWest) ? 0 : 1;
}

void Router::receive_flit(int in_port, Flit flit) {
  assert(in_port >= 0 && in_port < ports_);
  assert(flit.vc >= 0 && flit.vc < vcount_);
  auto& ivc = in_vc(in_port, flit.vc);
  if (static_cast<int>(ivc.fifo.size()) >= params_.buffer_depth) {
    throw std::logic_error(name() + ": input buffer overflow (credit bug)");
  }
  ivc.fifo.push_back(flit);
  ++stat_buffer_writes_;
}

void Router::receive_credit(int out_port, int vc) {
  auto& ovc = out_vc(out_port, vc);
  ++ovc.credits;
  if (ovc.credits > params_.buffer_depth && out_port != topo_.local_port()) {
    throw std::logic_error(name() + ": credit overflow");
  }
}

void Router::inject(const noc::Message& msg, std::uint32_t nflits) {
  Flit f;
  f.msg = msg.id;
  f.src = msg.src;
  f.dst = msg.dst;
  f.cls = msg.cls;
  f.injected_at = msg.inject_time;
  for (std::uint32_t i = 0; i < nflits; ++i) {
    f.seq = i;
    f.is_head = (i == 0);
    f.is_tail = (i == nflits - 1);
    inj_queue_.push_back(f);
  }
}

bool Router::has_work() const {
  if (!inj_queue_.empty()) return true;
  for (const auto& ivc : inputs_) {
    if (!ivc.fifo.empty()) return true;
  }
  return false;
}

int Router::free_credits(int port) const {
  if (port == topo_.local_port()) return kInfiniteCredits;
  int total = 0;
  for (int v = 0; v < vcount_; ++v) total += outputs_[vc_index(port, v)].credits;
  return total;
}

bool Router::tick() {
  phase_switch_allocation();
  phase_vc_allocation();
  phase_route_compute();
  phase_injection();
  return has_work();
}

void Router::phase_switch_allocation() {
  // Stage 1: each input port nominates one ready VC.
  auto& nominee = sa_nominee_;  // VC index per input port
  std::fill(nominee.begin(), nominee.end(), -1);
  for (int p = 0; p < ports_; ++p) {
    std::fill(req_vc_.begin(), req_vc_.end(), false);
    bool any = false;
    for (int v = 0; v < vcount_; ++v) {
      const auto& ivc = in_vc(p, v);
      if (ivc.fifo.empty() || ivc.out_port < 0 || ivc.out_vc < 0) continue;
      const auto& ovc = outputs_[vc_index(ivc.out_port, ivc.out_vc)];
      if (ovc.credits <= 0) continue;
      req_vc_[static_cast<std::size_t>(v)] = true;
      any = true;
    }
    if (any) nominee[static_cast<std::size_t>(p)] = sa_input_arb_[p]->grant(req_vc_);
  }

  // Stage 2: each output port grants one nominated input port.
  auto& winner_in = sa_winner_;  // input port per output port
  std::fill(winner_in.begin(), winner_in.end(), -1);
  for (int q = 0; q < ports_; ++q) {
    std::fill(req_port_.begin(), req_port_.end(), false);
    bool any = false;
    for (int p = 0; p < ports_; ++p) {
      if (nominee[static_cast<std::size_t>(p)] < 0) continue;
      if (in_vc(p, nominee[static_cast<std::size_t>(p)]).out_port == q) {
        req_port_[static_cast<std::size_t>(p)] = true;
        any = true;
      }
    }
    if (any) {
      const int w = sa_output_arb_[q]->grant(req_port_);
      if (w >= 0) winner_in[static_cast<std::size_t>(q)] = w;
    }
  }

  for (int q = 0; q < ports_; ++q) {
    const int w = winner_in[static_cast<std::size_t>(q)];
    if (w >= 0) {
      send_flit(w, nominee[static_cast<std::size_t>(w)]);
      ++stat_sa_grants_;
    }
  }
}

void Router::send_flit(int in_port, int in_vc_idx) {
  auto& ivc = in_vc(in_port, in_vc_idx);
  Flit f = ivc.fifo.front();
  ivc.fifo.pop_front();
  ++stat_buffer_reads_;
  ++stat_xbar_;

  const int out = ivc.out_port;
  auto& ovc = outputs_[vc_index(out, ivc.out_vc)];
  f.vc = static_cast<std::int16_t>(ivc.out_vc);
  f.dateline = ivc.next_dateline;

  const bool ejecting = (out == topo_.local_port());
  if (!ejecting) {
    --ovc.credits;
    ++stat_link_;
    cb_.forward_flit(id_, out, f);
  } else {
    cb_.eject_flit(id_, f);
  }

  if (f.is_tail) {
    ovc.busy = false;
    ivc.out_port = -1;
    ivc.out_vc = -1;
  }

  // Return a credit upstream for the slot we just freed (links only; the
  // local injection path reads buffer occupancy directly).
  if (in_port != topo_.local_port()) {
    cb_.return_credit(id_, in_port, in_vc_idx);
  }
}

void Router::phase_vc_allocation() {
  // One grant per output port per cycle, arbitrated over input VCs.
  for (int q = 0; q < ports_; ++q) {
    auto& req = req_pv_;
    std::fill(req.begin(), req.end(), false);
    bool any = false;
    for (int p = 0; p < ports_; ++p) {
      for (int v = 0; v < vcount_; ++v) {
        const auto& ivc = in_vc(p, v);
        if (ivc.out_port != q || ivc.out_vc >= 0 || ivc.fifo.empty()) continue;
        // A free VC in the packet's allowed range must exist.
        const auto [lo, hi] =
            allowed_vcs(ivc.fifo.front().cls, ivc.next_dateline);
        bool free_exists = false;
        for (int ov = lo; ov < hi; ++ov) {
          if (!outputs_[vc_index(q, ov)].busy) {
            free_exists = true;
            break;
          }
        }
        if (free_exists) {
          req[static_cast<std::size_t>(p) * vcount_ + v] = true;
          any = true;
        }
      }
    }
    if (!any) continue;
    const int g = va_arb_[q]->grant(req);
    if (g < 0) continue;
    const int p = g / vcount_;
    const int v = g % vcount_;
    auto& ivc = in_vc(p, v);
    const auto [lo, hi] = allowed_vcs(ivc.fifo.front().cls, ivc.next_dateline);
    for (int ov = lo; ov < hi; ++ov) {
      auto& ovc = outputs_[vc_index(q, ov)];
      if (!ovc.busy) {
        ovc.busy = true;
        ivc.out_vc = ov;
        ++stat_va_grants_;
        break;
      }
    }
  }
}

void Router::phase_route_compute() {
  for (int p = 0; p < ports_; ++p) {
    for (int v = 0; v < vcount_; ++v) {
      auto& ivc = in_vc(p, v);
      if (ivc.fifo.empty() || ivc.out_port >= 0) continue;
      const Flit& head = ivc.fifo.front();
      if (!head.is_head) {
        throw std::logic_error(name() + ": body flit at unrouted VC head");
      }
      ++stat_rc_;
      if (head.dst == id_) {
        ivc.out_port = topo_.local_port();
        ivc.next_dateline = 0;
        continue;
      }
      const auto candidates = noc::route_ports(
          topo_, params_.routing, head.src, id_, head.dst);
      int chosen = candidates.front();
      if (params_.adaptive && candidates.size() > 1) {
        int best = -1;
        for (const int c : candidates) {
          const int fc = free_credits(c);
          if (fc > best) {
            best = fc;
            chosen = c;
          }
        }
      }
      ivc.out_port = chosen;
      if (is_wrap_link(chosen)) {
        ivc.next_dateline = 1;
      } else if (p != topo_.local_port() && p < topo_.radix() &&
                 axis_of(p) != axis_of(chosen)) {
        ivc.next_dateline = 0;  // dimension change resets the subclass
      } else {
        ivc.next_dateline = head.dateline;
      }
    }
  }
}

void Router::phase_injection() {
  if (inj_queue_.empty()) return;
  Flit& f = inj_queue_.front();
  // Only pull flits injected strictly before this cycle: the pull instant
  // then depends on the injection *cycle* alone, never on how the inject
  // event was ordered against this tick within the cycle — a requirement
  // for the trace-replay fixed-point property.
  if (f.injected_at >= now()) return;
  const int local = topo_.local_port();

  if (f.is_head) {
    assert(inj_active_msg_ == kInvalidMsg);
    const auto [lo, hi] = allowed_vcs(f.cls, 0);
    for (int v = lo; v < hi; ++v) {
      auto& ivc = in_vc(local, v);
      if (ivc.fifo.empty() && ivc.out_port < 0) {
        Flit head = f;
        head.vc = static_cast<std::int16_t>(v);
        inj_queue_.pop_front();
        if (!head.is_tail) {
          inj_active_vc_ = v;
          inj_active_msg_ = head.msg;
        }
        receive_flit(local, head);
        return;  // local port bandwidth: one flit per cycle
      }
    }
    return;  // no free VC; head blocks the injection queue
  }

  assert(inj_active_msg_ == f.msg && inj_active_vc_ >= 0);
  auto& ivc = in_vc(local, inj_active_vc_);
  if (static_cast<int>(ivc.fifo.size()) >= params_.buffer_depth) return;
  Flit body = f;
  body.vc = static_cast<std::int16_t>(inj_active_vc_);
  inj_queue_.pop_front();
  if (body.is_tail) {
    inj_active_vc_ = -1;
    inj_active_msg_ = kInvalidMsg;
  }
  receive_flit(local, body);
}

}  // namespace sctm::enoc
