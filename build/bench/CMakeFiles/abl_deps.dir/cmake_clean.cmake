file(REMOVE_RECURSE
  "CMakeFiles/abl_deps.dir/abl_deps.cpp.o"
  "CMakeFiles/abl_deps.dir/abl_deps.cpp.o.d"
  "abl_deps"
  "abl_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
