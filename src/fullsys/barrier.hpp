// Centralized barrier: cores send BarArrive to the barrier home node; when
// the last one lands, BarRelease fans out to every core. The release's
// dependency list carries *all* arrival MsgIds of the epoch, so trace replay
// reconstructs the max-of-arrivals semantics exactly.
#pragma once

#include <vector>

#include "fullsys/fabric.hpp"
#include "fullsys/params.hpp"
#include "sim/component.hpp"

namespace sctm::fullsys {

class BarrierManager : public Component {
 public:
  BarrierManager(Simulator& sim, std::string name, NodeId home, int cores,
                 Cycle release_latency, Fabric& fabric);

  void on_arrive(NodeId src, MsgId msg_id);

  std::uint64_t epochs_completed() const { return stat_epochs_; }

 private:
  NodeId home_;
  int cores_;
  Cycle release_latency_;
  Fabric& fabric_;
  std::vector<MsgId> arrivals_;
  std::vector<bool> arrived_;
  std::uint64_t& stat_epochs_;
};

}  // namespace sctm::fullsys
