#include "onoc/onoc_network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/parallel.hpp"
#include "onoc/power.hpp"

namespace sctm::onoc {

OnocNetwork::OnocNetwork(Simulator& sim, std::string name,
                         const noc::Topology& topo, const OnocParams& params)
    : Network(sim, std::move(name), topo.node_count()),
      topo_(topo),
      params_(params),
      stat_arb_wait_(accumulator("arb_wait")),
      stat_ser_(accumulator("serialization")),
      stat_transmissions_(counter("transmissions")) {
  params_.validate();
  // The optical plane keys channels off node ids alone (single-hop
  // waveguides), so any tile layout with coordinates works: distance and
  // width only scale the time-of-flight.
  if (params_.arbitration == Arbitration::kTokenRing) {
    tokens_.reserve(static_cast<std::size_t>(topo_.node_count()));
    for (int i = 0; i < topo_.node_count(); ++i) {
      tokens_.emplace_back(topo_.node_count(), params_.token_hop_latency);
    }
    arb_chan_.resize(static_cast<std::size_t>(topo_.node_count()));
  } else if (params_.arbitration == Arbitration::kSwmr) {
    src_channel_free_.assign(static_cast<std::size_t>(topo_.node_count()), 0);
    arb_chan_.resize(static_cast<std::size_t>(topo_.node_count()));
  } else if (params_.arbitration == Arbitration::kSharedPool) {
    if (params_.pool_channels < 1) {
      throw std::invalid_argument(this->name() + ": pool_channels must be >= 1");
    }
    pool_free_.assign(static_cast<std::size_t>(params_.pool_channels), 0);
  } else {
    receivers_.resize(static_cast<std::size_t>(topo_.node_count()));
    // The electrical control plane rides the same tile layout; if the
    // configured ctrl routing doesn't apply there (e.g. the default XY on a
    // 3D or file fabric), fall back to the topology's default algorithm.
    enoc::EnocParams ctrl_params = params_.ctrl;
    if (!noc::compatible(topo_, ctrl_params.routing)) {
      ctrl_params.routing = noc::default_algo(topo_);
    }
    ctrl_ = std::make_unique<enoc::EnocNetwork>(
        sim, this->name() + ".ctrl", topo_, ctrl_params);
    auto up = [this](const noc::Message& m) { on_ctrl_deliver(m); };
    static_assert(noc::Network::DeliverFn::fits_inline<decltype(up)>(),
                  "control-plane callback must stay within the SBO budget");
    ctrl_->set_deliver_callback(std::move(up));
  }
}

void OnocNetwork::install_fault_model(const fault::FaultSpec& spec) {
  Network::install_fault_model(spec);
  optical_ber_ = faulted_bit_error_rate(budget_inputs_for(*this),
                                        spec.onoc_ring_drift_sigma_c,
                                        spec.onoc_laser_degradation_db);
}

void OnocNetwork::reset() {
  Network::reset();
  for (auto& ring : tokens_) ring.reset();
  for (auto& c : src_channel_free_) c = 0;
  for (auto& c : pool_free_) c = 0;
  // Arbitration queues: the flush event (if any) died with the simulator's
  // queue reset; drop whatever it would have served, capacity retained.
  for (auto& reqs : arb_chan_) reqs.clear();
  for (auto& s : arb_shards_) {
    s.grants.clear();
    s.token_losses = 0;
  }
  arb_shards_in_use_ = 0;
  arb_queued_ = 0;
  arb_scheduled_ = false;
  if (ctrl_) ctrl_->reset();
  for (auto& r : receivers_) {
    r.busy = false;
    r.queue.clear();
  }
  pending_.clear();
  next_pending_id_ = 1;
  next_ctrl_msg_id_ = 1;
  in_flight_ = 0;
  data_bytes_ = 0;
}

bool OnocNetwork::idle() const {
  return in_flight_ == 0 && (!ctrl_ || ctrl_->idle());
}

Cycle OnocNetwork::zero_load_latency(const noc::Message& msg) const {
  const Cycle ser = params_.ser_cycles(msg.size_bytes);
  if (msg.src == msg.dst) {
    return params_.eo_latency + ser + params_.oe_latency;
  }
  const Cycle tof =
      params_.tof_cycles(topo_.distance(msg.src, msg.dst), topo_.width());
  return params_.eo_latency + ser + tof + params_.oe_latency;
}

void OnocNetwork::inject(noc::Message msg) {
  note_injected(msg);
  ++in_flight_;

  if (msg.src == msg.dst) {
    // Local loopback: conversion + serialization only, no arbitration.
    const Cycle lat = zero_load_latency(msg);
    auto ev = [this, msg]() mutable {
      --in_flight_;
      deliver(msg);
    };
    static_assert(InlineFn::fits_inline<decltype(ev)>());
    sim().schedule_in(lat, std::move(ev));
    return;
  }

  route_to_arbitration(msg);
}

// Entry into channel arbitration — shared by inject() and the fault model's
// retransmission path, so a NACKed message re-contends exactly like a fresh
// one (new arbitration wait, new path-setup transaction) while keeping its
// identity and original inject_time.
void OnocNetwork::route_to_arbitration(const noc::Message& msg) {
  if (params_.arbitration == Arbitration::kTokenRing) {
    // Per-channel arbitration defers to the cycle's late-band flush so it
    // can shard across channels; the grant values are what the immediate
    // acquire would have produced (same cycle, same per-channel order).
    queue_arbitration(msg, msg.dst);
    return;
  }

  if (params_.arbitration == Arbitration::kSwmr) {
    // The source's own channel is the only shared resource.
    queue_arbitration(msg, msg.src);
    return;
  }

  if (params_.arbitration == Arbitration::kSharedPool) {
    // FCFS over the earliest-free channel of the pool, plus a token round
    // of global arbitration latency per grant.
    std::size_t best = 0;
    for (std::size_t c = 1; c < pool_free_.size(); ++c) {
      if (pool_free_[c] < pool_free_[best]) best = c;
    }
    const Cycle arb = params_.token_round_cycles(topo_.node_count()) / 2;
    const Cycle earliest = sim().now() + arb;
    const Cycle start =
        pool_free_[best] > earliest ? pool_free_[best] : earliest;
    pool_free_[best] =
        start + params_.ser_cycles(msg.size_bytes) + params_.guard_cycles;
    stat_arb_wait_.add(static_cast<double>(start - sim().now()));
    sim().schedule_at(start, [this, msg]() mutable { start_transmission(msg); });
    return;
  }

  // Path setup: request the receiver over the control mesh.
  const std::uint64_t pid = next_pending_id_++;
  pending_.insert(pid, Pending{msg});
  send_ctrl(CtrlKind::kSetup, msg.src, msg.dst, pid);
}

void OnocNetwork::queue_arbitration(const noc::Message& msg, NodeId channel) {
  arb_chan_[static_cast<std::size_t>(channel)].push_back(msg);
  ++arb_queued_;
  if (!arb_scheduled_) {
    arb_scheduled_ = true;
    auto flush = [this] { arb_flush(); };
    static_assert(InlineFn::fits_inline<decltype(flush)>());
    sim().schedule_late(sim().now(), std::move(flush));
  }
}

// One flush per cycle with queued requests. All of the cycle's deliveries
// (and hence any same-cycle re-injections from the replay engine's late
// flush) either landed before this event or reschedule it — the late band
// keeps draining until empty, so no request waits a cycle.
void OnocNetwork::arb_flush() {
  arb_scheduled_ = false;
  unsigned nshards = 1;
  WorkerPool* pool = sim().worker_pool();
  if (pool != nullptr && pool->size() > 1 &&
      arb_queued_ >=
          static_cast<std::size_t>(parallel_grain_) * pool->size()) {
    nshards = std::min(pool->size(), static_cast<unsigned>(arb_chan_.size()));
  }
  if (arb_shards_.size() < nshards) arb_shards_.resize(nshards);
  arb_shards_in_use_ = nshards;
  if (nshards > 1) {
    pool->run([this, nshards](unsigned lane) {
      if (lane < nshards) tick_partitioned(lane, nshards);
    });
  } else {
    tick_partitioned(0, 1);
  }
  drain_ticks();
}

void OnocNetwork::tick_partitioned(unsigned shard, unsigned nshards) {
  const std::size_t n = arb_chan_.size();
  const std::size_t lo = n * shard / nshards;
  const std::size_t hi = n * (shard + 1) / nshards;
  ArbShard& st = arb_shards_[shard];
  const Cycle t = sim().now();  // every queued request shares this cycle
  for (std::size_t c = lo; c < hi; ++c) {
    std::vector<noc::Message>& reqs = arb_chan_[c];
    if (reqs.empty()) continue;
    if (params_.arbitration == Arbitration::kTokenRing) {
      TokenRing& ring = tokens_[c];
      fault::FaultModel* fm = fault_model();
      for (const noc::Message& m : reqs) {
        // Token-loss draw from the channel's own child stream: this channel
        // is owned by exactly this shard, and its request order is the
        // shard-invariant per-channel arrival subsequence, so the draw
        // sequence (hence every grant) is identical at any lane count.
        if (fm != nullptr && fm->draw_token_loss(static_cast<int>(c))) {
          ring.lose_token(t, fm->spec().onoc_token_regen_cycles);
          ++st.token_losses;
        }
        const Cycle hold =
            params_.ser_cycles(m.size_bytes) + params_.guard_cycles;
        const Cycle grant = ring.acquire(m.src, t, hold);
        st.grants.push_back({m, grant, grant - t});
      }
    } else {
      Cycle& free_at = src_channel_free_[c];
      for (const noc::Message& m : reqs) {
        const Cycle start = free_at > t ? free_at : t;
        free_at =
            start + params_.ser_cycles(m.size_bytes) + params_.guard_cycles;
        st.grants.push_back({m, start, start - t});
      }
    }
    reqs.clear();
  }
}

void OnocNetwork::drain_ticks() {
  for (unsigned s = 0; s < arb_shards_in_use_; ++s) {
    ArbShard& st = arb_shards_[s];
    if (st.token_losses != 0) {
      fault_model()->note_token_losses(st.token_losses);
      st.token_losses = 0;
    }
    for (const Grant& g : st.grants) {
      stat_arb_wait_.add(static_cast<double>(g.wait));
      const noc::Message msg = g.msg;
      auto ev = [this, msg]() mutable { start_transmission(msg); };
      static_assert(InlineFn::fits_inline<decltype(ev)>());
      sim().schedule_at(g.start, std::move(ev));
    }
    st.grants.clear();
  }
  arb_shards_in_use_ = 0;
  arb_queued_ = 0;
}

void OnocNetwork::start_transmission(noc::Message msg) {
  const Cycle ser = params_.ser_cycles(msg.size_bytes);
  const Cycle tof =
      params_.tof_cycles(topo_.distance(msg.src, msg.dst), topo_.width());
  const Cycle lat = params_.eo_latency + ser + tof + params_.oe_latency;
  stat_ser_.add(static_cast<double>(ser));
  ++stat_transmissions_;
  data_bytes_ += msg.size_bytes;
  auto ev = [this, msg]() mutable { complete_transmission(msg); };
  static_assert(InlineFn::fits_inline<decltype(ev)>(),
                "optical delivery closure must stay within the SBO budget");
  sim().schedule_in(lat, std::move(ev));
}

// Arrival of the optical payload at the receiver, where the self-correction
// layer checks transfer integrity. The corruption draw happens here, at
// event dispatch (serial by construction), from the whole-transfer error
// probability the cached BER implies: p = 1 - (1-ber)^bits.
void OnocNetwork::complete_transmission(noc::Message msg) {
  fault::FaultModel* fm = fault_model();
  if (fm != nullptr && optical_ber_ > 0.0) {
    const double bits = 8.0 * static_cast<double>(msg.size_bytes);
    const double p = -std::expm1(bits * std::log1p(-optical_ber_));
    if (fm->draw_optical_corrupt(p)) {
      if (fm->on_corrupt_message(msg.id, sim().now()) ==
          fault::FaultModel::Action::kRetransmit) {
        // NACK turnaround, then re-contend from scratch; in_flight_ stays
        // held so idle() (and replay's drain) never observes a gap.
        const noc::Message m = msg;
        auto ev = [this, m] { route_to_arbitration(m); };
        static_assert(InlineFn::fits_inline<decltype(ev)>(),
                      "retry closure must stay within the event SBO budget");
        sim().schedule_in(fm->nack_delay(), std::move(ev));
        return;
      }
      // Budget exhausted: surface the (corrupt) transfer anyway — the
      // fabric stays lossless — counted in <name>.fault.messages_lost.
      --in_flight_;
      deliver(msg);
      return;
    }
    fm->on_clean_delivery(msg.id, sim().now());
  }
  --in_flight_;
  deliver(msg);
}

void OnocNetwork::send_ctrl(CtrlKind kind, NodeId from, NodeId to,
                            std::uint64_t pending_id) {
  noc::Message c;
  c.id = next_ctrl_msg_id_++;
  c.src = from;
  c.dst = to;
  c.size_bytes = params_.ctrl_msg_bytes;
  c.cls = noc::MsgClass::kControl;
  c.tag = (static_cast<std::uint64_t>(kind) << 56) | pending_id;
  ctrl_->inject(c);
}

void OnocNetwork::on_ctrl_deliver(const noc::Message& ctrl) {
  const auto kind = static_cast<CtrlKind>(ctrl.tag >> 56);
  const std::uint64_t pid = ctrl.tag & ((std::uint64_t{1} << 56) - 1);
  Pending* pending = pending_.find(pid);
  if (pending == nullptr) {
    throw std::logic_error(name() + ": control message for unknown pending id");
  }
  noc::Message& msg = pending->msg;

  if (kind == CtrlKind::kSetup) {
    auto& recv = receivers_[static_cast<std::size_t>(msg.dst)];
    if (recv.busy) {
      recv.queue.push_back(pid);
    } else {
      recv.busy = true;
      send_grant(msg.dst, pid);
    }
    return;
  }

  // Grant arrived at the writer: transmit now; the receiver frees when the
  // tail has been detected (end of the optical transfer), plus a guard band.
  stat_arb_wait_.add(static_cast<double>(sim().now() - msg.inject_time));
  const noc::Message data = msg;
  pending_.erase(pid);
  const Cycle ser = params_.ser_cycles(data.size_bytes);
  const Cycle tof =
      params_.tof_cycles(topo_.distance(data.src, data.dst), topo_.width());
  const Cycle busy_for = params_.eo_latency + ser + tof + params_.oe_latency +
                         params_.guard_cycles;
  const NodeId dst = data.dst;
  sim().schedule_in(busy_for, [this, dst] { receiver_freed(dst); });
  start_transmission(data);
}

void OnocNetwork::receiver_freed(NodeId dst) {
  auto& recv = receivers_[static_cast<std::size_t>(dst)];
  if (recv.queue.empty()) {
    recv.busy = false;
    return;
  }
  const std::uint64_t pid = recv.queue.front();
  recv.queue.pop_front();
  send_grant(dst, pid);
}

// Grant emission, with reservation-loss faults: a lost grant is detected by
// the writer's reservation timeout and the receiver re-issues it. After the
// retry budget the grant is forced through (the protocol escalates to a
// reliable path), so the writer always hears back and the receiver — busy
// until its grant is consumed — can never deadlock.
void OnocNetwork::send_grant(NodeId dst, std::uint64_t pid) {
  Pending* pending = pending_.find(pid);
  if (pending == nullptr) {
    throw std::logic_error(name() + ": grant for unknown pending id");
  }
  fault::FaultModel* fm = fault_model();
  if (fm != nullptr && fm->draw_reservation_loss() &&
      pending->resv_retries <
          static_cast<std::uint32_t>(fm->spec().max_retries)) {
    ++pending->resv_retries;
    auto ev = [this, dst, pid] { send_grant(dst, pid); };
    static_assert(InlineFn::fits_inline<decltype(ev)>(),
                  "grant-retry closure must stay within the event SBO budget");
    sim().schedule_in(fm->spec().onoc_reservation_timeout, std::move(ev));
    return;
  }
  send_ctrl(CtrlKind::kGrant, dst, pending->msg.src, pid);
}

}  // namespace sctm::onoc
