# Empty compiler generated dependencies file for sctm_cli.
# This may be replaced when dependencies are built.
