// Randomized protocol stress: generate random-but-legal op streams (random
// loads/stores over a small, heavily shared line space; aligned barriers),
// run them execution-driven over the real electrical NoC with tiny caches
// (maximizing evictions, recalls, invalidations and writeback races), and
// assert global termination, losslessness and the MSI coherence invariants.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "enoc/enoc_network.hpp"
#include "fullsys/cmp_system.hpp"

namespace sctm::fullsys {
namespace {

std::vector<std::vector<Op>> random_streams(std::uint64_t seed, int cores,
                                            int ops_per_phase, int phases,
                                            std::uint64_t lines) {
  Rng rng(seed);
  std::vector<std::vector<Op>> out(static_cast<std::size_t>(cores));
  for (int ph = 0; ph < phases; ++ph) {
    for (int c = 0; c < cores; ++c) {
      auto& s = out[static_cast<std::size_t>(c)];
      for (int i = 0; i < ops_per_phase; ++i) {
        const double roll = rng.next_double();
        if (roll < 0.45) {
          s.push_back({OpKind::kLoad, rng.next_below(lines)});
        } else if (roll < 0.8) {
          s.push_back({OpKind::kStore, rng.next_below(lines)});
        } else {
          s.push_back({OpKind::kCompute, rng.next_below(20) + 1});
        }
      }
      s.push_back({OpKind::kBarrier, 0});
    }
  }
  for (auto& s : out) s.push_back({OpKind::kDone, 0});
  return out;
}

class ProtocolFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolFuzz, TerminatesLosslessAndCoherent) {
  Simulator sim;
  const auto topo = noc::Topology::mesh(4, 4);
  enoc::EnocNetwork net(sim, "enoc", topo, enoc::EnocParams{});
  FullSysParams p;
  p.l1_sets = 2;  // brutal: 4-line L1s force constant eviction traffic
  p.l1_ways = 2;
  p.l2_sets = 8;
  p.l2_ways = 2;
  CmpSystem cmp(sim, "cmp", net, topo, p,
                random_streams(GetParam(), 16, /*ops=*/40, /*phases=*/3,
                               /*lines=*/24));
  const Cycle t = cmp.run_to_completion();
  EXPECT_GT(t, 0u);
  EXPECT_EQ(net.injected_count(), net.delivered_count());
  const auto violations = cmp.audit_coherence();
  for (const auto& v : violations) ADD_FAILURE() << v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233));

TEST(ProtocolFuzzWide, LargerFabricAndHotterSharing) {
  for (const std::uint64_t seed : {7ull, 77ull, 777ull}) {
    Simulator sim;
    const auto topo = noc::Topology::mesh(8, 8);
    enoc::EnocNetwork net(sim, "enoc", topo, enoc::EnocParams{});
    FullSysParams p;
    p.l1_sets = 2;
    p.l1_ways = 2;
    p.l2_sets = 8;
    p.l2_ways = 2;
    CmpSystem cmp(sim, "cmp", net, topo, p,
                  random_streams(seed, 64, /*ops=*/20, /*phases=*/2,
                                 /*lines=*/16));
    cmp.run_to_completion();
    EXPECT_EQ(net.injected_count(), net.delivered_count());
    EXPECT_TRUE(cmp.audit_coherence().empty()) << "seed " << seed;
  }
}

TEST(ProtocolFuzzAudit, CleanRunAuditsClean) {
  Simulator sim;
  const auto topo = noc::Topology::mesh(2, 2);
  noc::IdealNetwork net(sim, "net", topo, {});
  FullSysParams p;
  std::vector<std::vector<Op>> s(4);
  for (auto& v : s) v = {{OpKind::kBarrier, 0}, {OpKind::kDone, 0}};
  s[0] = {{OpKind::kStore, 5}, {OpKind::kBarrier, 0}, {OpKind::kDone, 0}};
  s[1] = {{OpKind::kCompute, 500},
          {OpKind::kLoad, 5},
          {OpKind::kBarrier, 0},
          {OpKind::kDone, 0}};
  CmpSystem cmp(sim, "cmp", net, topo, p, s);
  cmp.run_to_completion();
  const auto violations = cmp.audit_coherence();
  EXPECT_TRUE(violations.empty());
}

}  // namespace
}  // namespace sctm::fullsys
