// End-to-end pipeline over the graph-backed fabrics: capture on a 3D mesh
// and on the shipped file-defined fabric, round-trip the trace through the
// v2 container, replay it in parallel bit-identically at {1, 2, 8} threads,
// and run a screened exploration over candidate variants of the same
// fabric. This is the "new kinds are first-class workloads" acceptance
// check: every stage that works for the legacy 2D kinds must work — and
// stay deterministic — for mesh3d/torus3d/file.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analytic/screen.hpp"
#include "core/driver.hpp"
#include "core/explore.hpp"
#include "noc/routing.hpp"
#include "trace/trace_io.hpp"
#include "tracestore/trace_store.hpp"

namespace sctm {
namespace {

using core::NetKind;
using core::NetSpec;

NetSpec spec_on(NetKind kind, const noc::Topology& topo) {
  NetSpec s;
  s.kind = kind;
  s.topo = topo;
  s.enoc.routing = noc::default_algo(topo);
  s.hybrid.electrical.routing = s.enoc.routing;
  return s;
}

fullsys::AppParams app_on(const noc::Topology& topo) {
  fullsys::AppParams app;
  app.name = "fft";
  app.cores = topo.node_count();
  app.lines_per_core = 8;
  app.iterations = 1;
  return app;
}

/// The shipped 12-node fabric, or nullptr when the source tree is not
/// reachable from this binary (exotic build layouts).
const noc::Topology* shipped_file_topology() {
  static const std::unique_ptr<noc::Topology> topo = [] {
    std::string root = __FILE__;
    const auto cut = root.rfind("tests/");
    if (cut == std::string::npos) return std::unique_ptr<noc::Topology>();
    try {
      return std::make_unique<noc::Topology>(
          noc::Topology::from_file(root.substr(0, cut) +
                                   "configs/group12.topo"));
    } catch (const std::exception&) {
      return std::unique_ptr<noc::Topology>();
    }
  }();
  return topo.get();
}

void run_pipeline(const noc::Topology& topo, const std::string& tag) {
  // Capture on the electrical NoC over the fabric under test.
  const NetSpec cap_spec = spec_on(NetKind::kEnoc, topo);
  const auto exec = core::run_execution(app_on(topo), cap_spec, {});
  ASSERT_GT(exec.trace.records.size(), 100u);

  // Round-trip through the v2 container (the store only writes v2; the
  // generic reader dispatches on magic).
  const std::string path = "/tmp/sctm_topo_pipeline_" + tag + ".trc2";
  tracestore::write_v2_file(exec.trace, path);
  const auto verify = tracestore::verify_v2_file(path);
  EXPECT_TRUE(verify.ok) << verify.error;
  const auto loaded = trace::read_binary_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded, exec.trace);

  // Parallel replay is bit-identical to serial on the new fabrics.
  const core::ReplayTrace rt(loaded);
  core::ReplayConfig serial_cfg;
  const auto serial = core::run_replay(rt, cap_spec, serial_cfg);
  for (const unsigned threads : {2u, 8u}) {
    core::ReplayConfig cfg;
    cfg.threads = threads;
    const auto par = core::run_replay(rt, cap_spec, cfg);
    const std::string what = tag + " threads=" + std::to_string(threads);
    EXPECT_EQ(par.result.inject_time, serial.result.inject_time) << what;
    EXPECT_EQ(par.result.arrive_time, serial.result.arrive_time) << what;
    EXPECT_EQ(par.result.runtime, serial.result.runtime) << what;
  }

  // Same-network replay is the fixed point on graph-backed fabrics too.
  for (std::size_t i = 0; i < loaded.records.size(); ++i) {
    ASSERT_EQ(serial.result.inject_time[i], loaded.records[i].inject_time);
    ASSERT_EQ(serial.result.arrive_time[i], loaded.records[i].arrive_time);
  }

  // Screened exploration: rank parameter variants analytically, confirm the
  // top two with replay. Deterministic and complete — every candidate comes
  // back, replayed or analytic-only.
  std::vector<core::Candidate> candidates;
  for (const int depth : {1, 4, 8}) {
    NetSpec s = cap_spec;
    s.enoc.buffer_depth = depth;
    candidates.push_back({"buf" + std::to_string(depth), s});
  }
  core::ExploreConfig ecfg;
  ecfg.threads = 2;
  ecfg.screen_top_k = 2;
  const auto ranked = analytic::explore_screened(rt, candidates, ecfg);
  ASSERT_EQ(ranked.size(), candidates.size());
  std::size_t replayed = 0;
  for (const auto& r : ranked) {
    EXPECT_GT(r.analytic_rank, 0u) << r.name;
    EXPECT_GT(r.est_runtime, 0.0) << r.name;
    if (r.replayed) {
      ++replayed;
      EXPECT_GT(r.runtime, 0u) << r.name;
    }
  }
  EXPECT_EQ(replayed, 2u);
  // Confirmed candidates sort ahead of the analytic-only tail.
  EXPECT_TRUE(ranked[0].replayed);
  EXPECT_TRUE(ranked[1].replayed);
  EXPECT_FALSE(ranked[2].replayed);
}

TEST(TopologyPipeline, Mesh3DEndToEnd) {
  run_pipeline(noc::Topology::mesh3d(4, 4, 2), "mesh3d");
}

TEST(TopologyPipeline, Torus3DEndToEnd) {
  run_pipeline(noc::Topology::torus3d(3, 3, 2), "torus3d");
}

TEST(TopologyPipeline, FileFabricEndToEnd) {
  const noc::Topology* topo = shipped_file_topology();
  if (topo == nullptr) GTEST_SKIP() << "configs/group12.topo not reachable";
  run_pipeline(*topo, "group12");
}

}  // namespace
}  // namespace sctm
