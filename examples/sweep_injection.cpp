// Synthetic-traffic characterization example: classic load/latency curves
// for the electrical mesh and both ONOC arbitration schemes under uniform
// random traffic. Useful for sanity-checking a network configuration before
// committing to a long full-system run.
//
// Build & run:  ./build/examples/sweep_injection
#include <cstdio>
#include <memory>

#include "common/table.hpp"
#include "core/driver.hpp"
#include "noc/traffic.hpp"

int main() {
  using namespace sctm;

  Table table("uniform-random load sweep, 4x4 fabric, 64 B packets");
  table.set_header({"rate (pkt/node/cyc)", "network", "mean lat", "p99 lat",
                    "throughput"});

  for (const double rate : {0.02, 0.05, 0.10, 0.20, 0.35}) {
    for (const auto kind : {core::NetKind::kEnoc, core::NetKind::kOnocToken,
                            core::NetKind::kOnocSetup}) {
      core::NetSpec spec;
      spec.kind = kind;
      Simulator sim;
      auto net = core::make_factory(spec)(sim);
      noc::TrafficGenerator::Params tp;
      tp.injection_rate = rate;
      tp.packet_bytes = 64;
      tp.warmup = 500;
      tp.measure = 5000;
      tp.seed = 7;
      noc::TrafficGenerator gen(sim, "gen", *net, spec.topo, tp);
      gen.run_to_completion();
      table.add_row({Table::fmt(rate, 2), core::to_string(kind),
                     Table::fmt(gen.latency().mean(), 1),
                     Table::fmt(gen.latency().percentile(0.99)),
                     Table::fmt(gen.throughput(), 3)});
    }
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  return 0;
}
