// CMP full-system wiring: cores + L1s, L2 banks + directory, memory
// controllers, barrier manager, all over one pluggable noc::Network.
//
// This is the execution-driven front end of the simulator. It doubles as the
// trace *capture* source: every protocol message injection is reported to an
// optional observer together with its causal dependencies (which arrivals at
// the sending node gated it, and with how much endpoint slack) — exactly the
// records the Self-Correction Trace Model consumes.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hpp"
#include "fullsys/app.hpp"
#include "fullsys/barrier.hpp"
#include "fullsys/core_model.hpp"
#include "fullsys/fabric.hpp"
#include "fullsys/l2bank.hpp"
#include "fullsys/memctrl.hpp"
#include "fullsys/params.hpp"
#include "noc/network.hpp"
#include "noc/topology.hpp"

namespace sctm::fullsys {

/// One captured injection: the message plus its causal dependencies.
struct InjectionEvent {
  struct Dep {
    MsgId parent = kInvalidMsg;  // message whose *arrival* gates this send
    Cycle slack = 0;             // send_time - parent_arrival_time
  };
  noc::Message msg;
  ProtoMsg proto = ProtoMsg::kGetS;
  std::vector<Dep> deps;
};

class CmpSystem final : public Component, public Fabric {
 public:
  /// The network must span topo.node_count() endpoints. `streams` is one op
  /// stream per core (see build_app); stream count must equal node count.
  CmpSystem(Simulator& sim, std::string name, noc::Network& net,
            const noc::Topology& topo, const FullSysParams& params,
            std::vector<std::vector<Op>> streams);

  /// Observer for trace capture; set before start().
  void set_inject_observer(std::function<void(const InjectionEvent&)> fn) {
    observer_ = std::move(fn);
  }

  /// Observer for message arrivals (delivery time stamping); set before
  /// start(). Called before the message is dispatched to its endpoint.
  void set_deliver_observer(std::function<void(const noc::Message&)> fn) {
    deliver_observer_ = std::move(fn);
  }

  /// Schedules core startup. Call once, then run the simulator.
  void start();

  /// Runs the simulation to quiescence and returns the application runtime
  /// (cycle at which the last core finished).
  Cycle run_to_completion();

  /// Observability of the last run_to_completion() call: host wall time and
  /// kernel events executed (feeds the "execute" phase of the run-metrics
  /// document).
  double run_wall_seconds() const { return run_wall_seconds_; }
  std::uint64_t run_events() const { return run_events_; }

  bool finished() const;
  Cycle app_runtime() const;

  // Fabric implementation.
  MsgId send(ProtoMsg type, NodeId src, NodeId dst, std::uint64_t line,
             const std::vector<MsgId>& causes) override;
  NodeId home_of(std::uint64_t line) const override;
  NodeId mc_for(std::uint64_t line) const override;

  const std::vector<NodeId>& mc_nodes() const { return params_.mc_nodes; }
  std::uint64_t messages_sent() const { return next_msg_id_ - 1; }
  Core& core(NodeId n) { return *cores_[static_cast<std::size_t>(n)]; }
  L2Bank& bank(NodeId n) { return *banks_[static_cast<std::size_t>(n)]; }

  /// Coherence audit — run at quiescence. Checks the protocol's global
  /// invariants over all L1s and directories:
  ///  * single writer: at most one L1 holds a line in M;
  ///  * an M copy is registered: its directory entry says M with that owner;
  ///  * an S copy is registered: the directory lists that L1 as a sharer
  ///    (the converse may not hold — silent S evictions leave stale sharer
  ///    bits, which is safe over-approximation);
  ///  * no bank has an in-flight transaction.
  /// Returns human-readable violations (empty == coherent).
  std::vector<std::string> audit_coherence() const;

 private:
  void on_deliver(const noc::Message& msg);

  noc::Network& net_;
  noc::Topology topo_;
  FullSysParams params_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::unique_ptr<L2Bank>> banks_;
  std::unordered_map<NodeId, std::unique_ptr<MemCtrl>> mcs_;
  std::unique_ptr<BarrierManager> barrier_;

  std::function<void(const InjectionEvent&)> observer_;
  std::function<void(const noc::Message&)> deliver_observer_;
  /// Arrival stamp per delivered message (slack derivation). Open-addressing
  /// with retained capacity: no per-message node allocation on the hot
  /// delivery path.
  FlatMap<MsgId, Cycle> arrival_time_;
  MsgId next_msg_id_ = 1;
  double run_wall_seconds_ = 0.0;
  std::uint64_t run_events_ = 0;

  std::uint64_t& stat_msgs_;
};

}  // namespace sctm::fullsys
