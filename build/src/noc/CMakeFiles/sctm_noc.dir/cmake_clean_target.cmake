file(REMOVE_RECURSE
  "libsctm_noc.a"
)
