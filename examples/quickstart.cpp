// Quickstart: the complete Self-Correction Trace Model pipeline in ~60
// lines.
//
//   1. Run an application execution-driven on the electrical baseline NoC,
//      capturing a dependency-annotated trace.
//   2. Replay the trace on an optical NoC twice: naively (frozen
//      timestamps) and with self-correction.
//   3. Compare against execution-driven ground truth on the same ONOC.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/driver.hpp"
#include "core/error_metrics.hpp"

int main() {
  using namespace sctm;

  // The workload: a 16-core FFT kernel (butterfly exchanges + barriers).
  fullsys::AppParams app;
  app.name = "fft";
  app.cores = 16;
  app.lines_per_core = 16;
  app.iterations = 2;

  fullsys::FullSysParams sys;  // default cache hierarchy

  // Capture network: 4x4 electrical wormhole mesh.
  core::NetSpec enoc;
  enoc.kind = core::NetKind::kEnoc;

  // Target network: token-arbitrated optical crossbar on the same die.
  core::NetSpec onoc;
  onoc.kind = core::NetKind::kOnocToken;

  std::puts("[1/3] execution-driven capture on the electrical mesh...");
  const auto capture = core::run_execution(app, enoc, sys);
  std::printf("      runtime %llu cycles, %zu messages, %.3f s wall\n",
              static_cast<unsigned long long>(capture.runtime),
              capture.trace.records.size(), capture.wall_seconds);

  std::puts("[2/3] trace replay on the optical NoC...");
  core::ReplayConfig naive_cfg;
  naive_cfg.mode = core::ReplayMode::kNaive;
  const auto naive = core::run_replay(capture.trace, onoc, naive_cfg);
  const auto sctm = core::run_replay(capture.trace, onoc, {});
  std::printf("      naive: runtime %llu cycles, %.4f s wall\n",
              static_cast<unsigned long long>(naive.result.runtime),
              naive.wall_seconds);
  std::printf("      sctm : runtime %llu cycles, %.4f s wall\n",
              static_cast<unsigned long long>(sctm.result.runtime),
              sctm.wall_seconds);

  std::puts("[3/3] ground truth: execution-driven on the optical NoC...");
  const auto truth = core::run_execution(app, onoc, sys);
  const auto ts = core::summarize(truth.trace);
  const auto en = core::compare(ts, core::summarize(capture.trace, naive.result));
  const auto es = core::compare(ts, core::summarize(capture.trace, sctm.result));
  std::printf("      truth runtime %llu cycles (%.3f s wall)\n",
              static_cast<unsigned long long>(truth.runtime),
              truth.wall_seconds);
  std::printf("      naive trace error: runtime %.1f%%, mean latency %.1f%%\n",
              100 * en.runtime_err, 100 * en.mean_latency_err);
  std::printf("      sctm  trace error: runtime %.1f%%, mean latency %.1f%%\n",
              100 * es.runtime_err, 100 * es.mean_latency_err);
  return 0;
}
