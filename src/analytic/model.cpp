#include "analytic/model.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "noc/route_table.hpp"
#include "noc/routing.hpp"
#include "onoc/loss.hpp"

namespace sctm::analytic {

namespace {

constexpr int kClasses = noc::kMsgClassCount;

/// ENoC router pipeline depth (RC/VA/SA -> ST), matching enoc::Router.
constexpr double kRouterPipeline = 3.0;
/// Final ejection cycle at the destination's local port.
constexpr double kEjection = 1.0;
/// Saturation clamp: a station's utilization headroom never drops below
/// this, so overloaded candidates get enormous-but-finite (and still
/// monotone) waits instead of division blow-ups.
constexpr double kMinHeadroom = 1e-6;

/// Waiting times saturate at this many spans: past full saturation the
/// exact magnitude is meaningless, only the (stable) ranking matters.
double wait_cap(const TraceProfile& p) {
  return 100.0 * static_cast<double>(p.span());
}

/// Finite-population correction: `m` messages sharing a station over the
/// whole trace contend as (m-1)/m of an open queue — in particular a
/// station used by a single message never waits, which is what replay does.
double finite_pop(double m) { return m <= 1.0 ? 0.0 : (m - 1.0) / m; }

/// Steering mask for the hybrid: one byte per (pair, class), 1 = optical.
/// Pure-kind models pass no mask and see all traffic.
struct PairClassFilter {
  const std::vector<std::uint8_t>* mask = nullptr;
  bool want_optical = false;

  bool accept(const TraceProfile& p, NodeId s, NodeId d, int c) const {
    if (mask == nullptr) return true;
    const std::size_t i = p.pair_index(s, d) * kClasses +
                          static_cast<std::size_t>(c);
    return ((*mask)[i] != 0) == want_optical;
  }
};

/// Weighted accumulation of per-(pair,class) latencies into a LatencyCore.
struct CoreAcc {
  AnalyticModel::LatencyCore out{};

  void add(int c, double msgs, double zero_load, double wait) {
    out.weight += msgs;
    out.mean_latency += msgs * (zero_load + wait);
    out.mean_wait += msgs * wait;
    out.max_zero_load = std::max(out.max_zero_load, zero_load);
    out.class_weight[static_cast<std::size_t>(c)] += msgs;
    out.class_latency[static_cast<std::size_t>(c)] +=
        msgs * (zero_load + wait);
  }

  AnalyticModel::LatencyCore finish(double bottleneck_busy) {
    if (out.weight > 0) {
      out.mean_latency /= out.weight;
      out.mean_wait /= out.weight;
    }
    for (int c = 0; c < kClasses; ++c) {
      const auto i = static_cast<std::size_t>(c);
      if (out.class_weight[i] > 0) out.class_latency[i] /= out.class_weight[i];
    }
    out.bottleneck_busy = bottleneck_busy;
    return out;
  }
};

// ---------------------------------------------------------------------------
// Ideal network: replicates noc::IdealNetwork::model_latency exactly (the
// contention-free agreement anchor — see tests/analytic/test_model.cpp).

AnalyticModel::LatencyCore ideal_core(const TraceProfile& p,
                                      const noc::Topology& topo,
                                      const noc::IdealNetwork::Params& prm) {
  CoreAcc acc;
  NodeId dist_src = kInvalidNode, dist_dst = kInvalidNode;
  int hops = 0;
  for (const auto& f : p.flows) {
    if (f.src != dist_src || f.dst != dist_dst) {
      dist_src = f.src;
      dist_dst = f.dst;
      hops = f.src == f.dst ? 0 : topo.distance(f.src, f.dst);
    }
    const double ser = std::ceil(f.mean_bytes / prm.bytes_per_cycle);
    const double l0 = static_cast<double>(prm.base_latency) +
                      static_cast<double>(prm.per_hop_latency) * hops + ser;
    acc.add(f.cls, f.msgs, l0, 0.0);
  }
  return acc.finish(0.0);  // infinite bandwidth: no throughput bound
}

// ---------------------------------------------------------------------------
// ENoC wormhole mesh: per-link non-preemptive priority M/G/1 (Mandal-style)
// over the deterministic route walk. Priority order is the MsgClass enum
// order (requests ahead of replies ahead of data ahead of control), the
// order the vnet partition drains under round-robin in practice.

AnalyticModel::LatencyCore enoc_core(const TraceProfile& p,
                                     const noc::Topology& topo,
                                     const enoc::EnocParams& prm,
                                     const noc::RoutingTable& routes,
                                     const PairClassFilter& filter) {
  const int radix = topo.radix();
  const auto links =
      static_cast<std::size_t>(p.nodes) * static_cast<std::size_t>(radix);
  const double span = static_cast<double>(p.span());
  // Per link x class: arrivals, Sum(flits), Sum(flits^2 * (1 + cv^2)).
  std::vector<double> a_msgs(links * kClasses, 0.0);
  std::vector<double> a_flits(links * kClasses, 0.0);
  std::vector<double> a_flits2(links * kClasses, 0.0);
  std::vector<double> link_msgs(links, 0.0);
  std::vector<double> link_busy(links, 0.0);

  const auto flits_of = [&](double bytes) {
    return std::max(1.0, (bytes + static_cast<double>(prm.head_bytes)) /
                             static_cast<double>(prm.flit_bytes));
  };

  // Group the pair-major flow list by pair and walk each route exactly once
  // (the flows of one pair share it): the whole core is O(active flows +
  // active pairs * hops), never O(nodes^2 * classes).
  struct PairGroup {
    std::size_t fbegin, fend;     // flow range
    std::uint32_t rbegin, rend;   // route range (rend - rbegin == hops)
  };
  std::vector<PairGroup> groups;
  std::vector<std::uint32_t> route;  // concatenated link ids
  // Dimension-ordered mesh routes are emitted straight from coordinates:
  // the per-hop route_first/neighbor calls are the scoring hot path's
  // dominant cost on anything but toy traces.
  const bool dor_mesh = topo.kind() == noc::Topology::Kind::kMesh &&
                        (prm.routing == noc::RoutingAlgo::kXY ||
                         prm.routing == noc::RoutingAlgo::kYX);
  const int width = topo.width();
  for (std::size_t f = 0; f < p.flows.size();) {
    const NodeId s = p.flows[f].src;
    const NodeId d = p.flows[f].dst;
    std::size_t g = f;
    while (g < p.flows.size() && p.flows[g].src == s && p.flows[g].dst == d) {
      ++g;
    }
    const auto rbegin = static_cast<std::uint32_t>(route.size());
    if (dor_mesh) {
      int cx = static_cast<int>(s) % width, cy = static_cast<int>(s) / width;
      const int dx = static_cast<int>(d) % width;
      const int dy = static_cast<int>(d) / width;
      const auto emit = [&](int dir) {
        route.push_back(static_cast<std::uint32_t>(cy * width + cx) *
                            static_cast<std::uint32_t>(radix) +
                        static_cast<std::uint32_t>(dir));
      };
      const auto walk_x = [&] {
        for (; cx != dx; cx += dx > cx ? 1 : -1) {
          emit(dx > cx ? noc::kEast : noc::kWest);
        }
      };
      const auto walk_y = [&] {
        for (; cy != dy; cy += dy > cy ? 1 : -1) {
          emit(dy > cy ? noc::kSouth : noc::kNorth);
        }
      };
      if (prm.routing == noc::RoutingAlgo::kXY) {
        walk_x();
        walk_y();
      } else {
        walk_y();
        walk_x();
      }
    } else {
      // Every other kind/algorithm pair — torus DOR, ring, XYZ, up*/down*
      // tables — walks the shared routing table the networks route with, so
      // the model scores exactly the links the simulator would traverse.
      routes.walk(s, d, [&](NodeId cur, int dir) {
        route.push_back(static_cast<std::uint32_t>(cur) *
                            static_cast<std::uint32_t>(radix) +
                        static_cast<std::uint32_t>(dir));
      });
    }
    groups.push_back({f, g, rbegin, static_cast<std::uint32_t>(route.size())});
    f = g;
  }

  std::array<double, noc::kMsgClassCount> cv2{};
  for (std::size_t c = 0; c < noc::kMsgClassCount; ++c) {
    cv2[c] = p.cls[c].cv_sq();
  }

  // Pass 1: offered load per link.
  for (const auto& grp : groups) {
    for (std::size_t f = grp.fbegin; f < grp.fend; ++f) {
      const auto& fw = p.flows[f];
      if (!filter.accept(p, fw.src, fw.dst, fw.cls)) continue;
      const double fl = flits_of(fw.mean_bytes);
      const double fl2 =
          fl * fl * (1.0 + cv2[static_cast<std::size_t>(fw.cls)]);
      const auto c = static_cast<std::size_t>(fw.cls);
      for (std::uint32_t r = grp.rbegin; r < grp.rend; ++r) {
        const std::size_t link = route[r];
        a_msgs[link * kClasses + c] += fw.msgs;
        a_flits[link * kClasses + c] += fw.msgs * fl;
        a_flits2[link * kClasses + c] += fw.msgs * fl2;
        link_msgs[link] += fw.msgs;
        link_busy[link] += fw.msgs * fl;
      }
    }
  }

  // Per-link priority waits: W_c = W0 / ((1 - sigma_{c-1})(1 - sigma_c)),
  // W0 = 1/2 Sum_k lambda_k E[S_k^2], sigma_c the cumulative utilization of
  // priorities <= c.
  std::vector<double> link_wait(links * kClasses, 0.0);
  double bottleneck = 0.0;
  const double cap = wait_cap(p);
  for (std::size_t l = 0; l < links; ++l) {
    if (link_msgs[l] == 0) continue;
    bottleneck = std::max(bottleneck, link_busy[l]);
    double w0 = 0.0;
    for (int c = 0; c < kClasses; ++c) {
      const std::size_t i = l * kClasses + static_cast<std::size_t>(c);
      if (a_msgs[i] == 0) continue;
      const double lambda = a_msgs[i] / span;
      w0 += 0.5 * lambda * (a_flits2[i] / a_msgs[i]);
    }
    const double fp = finite_pop(link_msgs[l]);
    double sigma_prev = 0.0;
    for (int c = 0; c < kClasses; ++c) {
      const std::size_t i = l * kClasses + static_cast<std::size_t>(c);
      const double rho = a_flits[i] / span;
      const double sigma = sigma_prev + rho;
      if (a_msgs[i] > 0) {
        const double denom = std::max(kMinHeadroom, 1.0 - sigma_prev) *
                             std::max(kMinHeadroom, 1.0 - sigma);
        link_wait[i] = std::min(cap, fp * w0 / denom);
      }
      sigma_prev = sigma;
    }
  }

  // Pass 2: per-pair latency = zero-load path time + route waiting terms.
  CoreAcc acc;
  for (const auto& grp : groups) {
    const int hops = static_cast<int>(grp.rend - grp.rbegin);
    for (std::size_t f = grp.fbegin; f < grp.fend; ++f) {
      const auto& fw = p.flows[f];
      if (!filter.accept(p, fw.src, fw.dst, fw.cls)) continue;
      const double fl = flits_of(fw.mean_bytes);
      const double l0 =
          hops * (kRouterPipeline + static_cast<double>(prm.link_latency)) +
          (fl - 1.0) + kEjection;
      double wait = 0.0;
      const auto c = static_cast<std::size_t>(fw.cls);
      for (std::uint32_t r = grp.rbegin; r < grp.rend; ++r) {
        wait += link_wait[static_cast<std::size_t>(route[r]) * kClasses + c];
      }
      acc.add(fw.cls, fw.msgs, l0, wait);
    }
  }
  return acc.finish(bottleneck);
}

// ---------------------------------------------------------------------------
// ONoC: channel-serialization models per arbitration scheme. A transfer
// holds its channel for ser + guard cycles; the channel is the M/G/1
// station (FCFS — optical arbitration has no priority classes). Zero-load
// adds E/O + serialization + time-of-flight + O/E plus the scheme's fixed
// arbitration term (half a token round, the control-mesh round trip, ...).

/// Expected transmissions per message once the eroded loss budget implies a
/// nonzero BER (onoc/loss.hpp): every transfer re-arbitrates on corruption,
/// so the whole service inflates by the expected retry count.
double retx_factor(double ber, double mean_bytes) {
  if (ber <= 0.0) return 1.0;
  const double bits = std::max(1.0, mean_bytes * 8.0);
  // P(corrupt) = 1 - (1 - ber)^bits, computed stably, capped short of 1.
  const double p_bad =
      std::min(0.9, -std::expm1(bits * std::log1p(-std::min(ber, 0.1))));
  return 1.0 / (1.0 - p_bad);
}

AnalyticModel::LatencyCore onoc_core(const TraceProfile& p,
                                     const noc::Topology& topo,
                                     const onoc::OnocParams& prm,
                                     onoc::Arbitration arb, double ber,
                                     const PairClassFilter& filter) {
  const double span = static_cast<double>(p.span());
  const double bpc = prm.bytes_per_cycle();
  const double guard = static_cast<double>(prm.guard_cycles);
  const double eo = static_cast<double>(prm.eo_latency);
  const double oe = static_cast<double>(prm.oe_latency);
  const bool pooled = arb == onoc::Arbitration::kSharedPool;
  const std::size_t channels =
      pooled ? 1 : static_cast<std::size_t>(p.nodes);
  const double round =
      static_cast<double>(prm.token_round_cycles(p.nodes));

  // Fixed (load-independent) arbitration term per scheme, given the pair's
  // hop distance.
  const auto fixed_arb = [&](int dist) -> double {
    switch (arb) {
      case onoc::Arbitration::kTokenRing:
        return 0.5 * round;  // mean token position when requested
      case onoc::Arbitration::kSwmr:
        return 0.0;  // the source owns its channel outright
      case onoc::Arbitration::kSharedPool:
        return 0.5 * round;  // every grant pays the arbitration round
      case onoc::Arbitration::kPathSetup: {
        // Setup request + grant over the electrical control mesh.
        const double fl = std::max(
            1.0, (static_cast<double>(prm.ctrl_msg_bytes) +
                  static_cast<double>(prm.ctrl.head_bytes)) /
                     static_cast<double>(prm.ctrl.flit_bytes));
        const double one_way =
            dist * (kRouterPipeline +
                    static_cast<double>(prm.ctrl.link_latency)) +
            (fl - 1.0) + kEjection;
        return 2.0 * one_way;
      }
    }
    return 0.0;
  };

  const auto serc = [&](double bytes) { return std::max(1.0, bytes / bpc); };

  // Pass 1: per-channel load. Channel key: destination for MWSR schemes
  // (token, path setup's receiver), source for SWMR, the single pool for
  // kSharedPool.
  std::array<double, noc::kMsgClassCount> cv2{};
  for (std::size_t c = 0; c < noc::kMsgClassCount; ++c) {
    cv2[c] = p.cls[c].cv_sq();
  }
  std::vector<double> ch_msgs(channels, 0.0);
  std::vector<double> ch_busy(channels, 0.0);   // Sum msgs * (ser + guard)
  std::vector<double> ch_s2(channels, 0.0);     // Sum msgs * S^2 * (1+cv^2)
  for (const auto& fw : p.flows) {
    if (fw.src == fw.dst || !filter.accept(p, fw.src, fw.dst, fw.cls)) {
      continue;
    }
    const std::size_t ch =
        pooled ? 0
               : static_cast<std::size_t>(
                     arb == onoc::Arbitration::kSwmr ? fw.src : fw.dst);
    const double svc = (serc(fw.mean_bytes) + guard) *
                       retx_factor(ber, fw.mean_bytes);
    ch_msgs[ch] += fw.msgs;
    ch_busy[ch] += fw.msgs * svc;
    ch_s2[ch] += fw.msgs * svc * svc *
                 (1.0 + cv2[static_cast<std::size_t>(fw.cls)]);
  }

  // Per-channel queueing wait.
  const double cap = wait_cap(p);
  const int servers = pooled ? std::max(1, prm.pool_channels) : 1;
  std::vector<double> ch_wait(channels, 0.0);
  double bottleneck = 0.0;
  for (std::size_t ch = 0; ch < channels; ++ch) {
    if (ch_msgs[ch] == 0) continue;
    bottleneck =
        std::max(bottleneck, ch_busy[ch] / static_cast<double>(servers));
    const double lambda = ch_msgs[ch] / span;
    const double es = ch_busy[ch] / ch_msgs[ch];
    const double es2 = ch_s2[ch] / ch_msgs[ch];
    const double rho =
        lambda * es / static_cast<double>(servers);
    const double headroom = std::max(kMinHeadroom, 1.0 - rho);
    double wq;
    if (servers == 1) {
      wq = lambda * es2 / (2.0 * headroom);
    } else {
      // Sakasegawa's M/G/m approximation.
      const double m = static_cast<double>(servers);
      const double cs2 = es2 / (es * es) - 1.0;
      wq = std::pow(rho, std::sqrt(2.0 * (m + 1.0)) - 1.0) / (m * headroom) *
           es * (1.0 + std::max(0.0, cs2)) / 2.0;
    }
    ch_wait[ch] = std::min(cap, finite_pop(ch_msgs[ch]) * wq);
  }

  // Pass 2: per-pair latency. Flows are pair-major, so the distance (and
  // everything derived from it) is computed once per pair, not per flow.
  CoreAcc acc;
  NodeId dist_src = kInvalidNode, dist_dst = kInvalidNode;
  int dist = 0;
  for (const auto& fw : p.flows) {
    if (!filter.accept(p, fw.src, fw.dst, fw.cls)) continue;
    const double rf = retx_factor(ber, fw.mean_bytes);
    if (fw.src == fw.dst) {
      // Local loopback: conversion + serialization, no arbitration.
      acc.add(fw.cls, fw.msgs, eo + serc(fw.mean_bytes) * rf + oe, 0.0);
      continue;
    }
    if (fw.src != dist_src || fw.dst != dist_dst) {
      dist_src = fw.src;
      dist_dst = fw.dst;
      dist = topo.distance(fw.src, fw.dst);
    }
    const double tof =
        static_cast<double>(prm.tof_cycles(dist, topo.width()));
    const double l0 =
        eo + serc(fw.mean_bytes) * rf + tof + oe + fixed_arb(dist);
    const std::size_t ch =
        pooled ? 0
               : static_cast<std::size_t>(
                     arb == onoc::Arbitration::kSwmr ? fw.src : fw.dst);
    acc.add(fw.cls, fw.msgs, l0, ch_wait[ch]);
  }
  return acc.finish(bottleneck);
}

// ---------------------------------------------------------------------------
// Concrete models.

struct IdealModel final : AnalyticModel {
  noc::Topology topo;
  noc::IdealNetwork::Params prm;
  IdealModel(const noc::Topology& t, const noc::IdealNetwork::Params& pr)
      : topo(t), prm(pr) {}
  const char* name() const override { return "ideal"; }
  LatencyCore core(const TraceProfile& p) const override {
    return ideal_core(p, topo, prm);
  }
};

struct EnocModel final : AnalyticModel {
  noc::Topology topo;
  enoc::EnocParams prm;
  noc::RoutingTable routes;
  EnocModel(const noc::Topology& t, const enoc::EnocParams& pr)
      : topo(t), prm(pr), routes(t, pr.routing) {}
  const char* name() const override { return "enoc"; }
  LatencyCore core(const TraceProfile& p) const override {
    return enoc_core(p, topo, prm, routes, {});
  }
};

struct OnocModel final : AnalyticModel {
  noc::Topology topo;
  onoc::OnocParams prm;
  onoc::Arbitration arb;
  double ber = 0;
  OnocModel(const noc::Topology& t, const onoc::OnocParams& pr,
            onoc::Arbitration a, const fault::FaultSpec& fault)
      : topo(t), prm(pr), arb(a) {
    prm.validate();
    if (fault.enabled()) {
      // Same eroded-budget BER the simulator derives (onoc/loss.hpp).
      onoc::LossBudgetInputs in;
      in.nodes = topo.node_count();
      in.wavelengths = prm.wavelengths;
      in.channels_per_node = topo.node_count() - 1;
      in.die_edge_cm = prm.die_edge_cm;
      in.ring = prm.ring;
      in.waveguide = prm.waveguide;
      in.detector = prm.detector;
      in.laser = prm.laser;
      ber = onoc::faulted_bit_error_rate(in, fault.onoc_ring_drift_sigma_c,
                                         fault.onoc_laser_degradation_db);
    }
  }
  const char* name() const override { return "onoc"; }
  LatencyCore core(const TraceProfile& p) const override {
    return onoc_core(p, topo, prm, arb, ber, {});
  }
};

/// Steering-threshold-weighted mix: the profile's (pair, class) buckets are
/// assigned to a plane by the same rule HybridNetwork::goes_optical applies
/// per message (using the bucket's mean size), each plane is modeled on its
/// own sub-load, and the cores recombine by message weight.
struct HybridModel final : AnalyticModel {
  noc::Topology topo;
  onoc::HybridParams prm;
  noc::RoutingTable routes;  // electrical plane
  double ber = 0;
  HybridModel(const noc::Topology& t, const onoc::HybridParams& pr,
              const fault::FaultSpec& fault)
      : topo(t), prm(pr), routes(t, pr.electrical.routing) {
    if (fault.enabled()) {
      onoc::LossBudgetInputs in;
      in.nodes = topo.node_count();
      in.wavelengths = prm.optical.wavelengths;
      in.channels_per_node = topo.node_count() - 1;
      in.die_edge_cm = prm.optical.die_edge_cm;
      in.ring = prm.optical.ring;
      in.waveguide = prm.optical.waveguide;
      in.detector = prm.optical.detector;
      in.laser = prm.optical.laser;
      ber = onoc::faulted_bit_error_rate(in, fault.onoc_ring_drift_sigma_c,
                                         fault.onoc_laser_degradation_db);
    }
  }
  const char* name() const override { return "hybrid"; }

  LatencyCore core(const TraceProfile& p) const override {
    std::vector<std::uint8_t> mask(
        static_cast<std::size_t>(p.nodes) * static_cast<std::size_t>(p.nodes) *
            kClasses,
        0);
    NodeId dist_src = kInvalidNode, dist_dst = kInvalidNode;
    bool far = false;
    for (const auto& fw : p.flows) {
      if (fw.src == fw.dst) continue;  // loopbacks stay electrical
      if (fw.src != dist_src || fw.dst != dist_dst) {
        dist_src = fw.src;
        dist_dst = fw.dst;
        far = topo.distance(fw.src, fw.dst) >= prm.distance_threshold;
      }
      const bool big =
          fw.mean_bytes >= static_cast<double>(prm.size_threshold);
      if (big || far) {
        mask[p.pair_index(fw.src, fw.dst) * kClasses +
             static_cast<std::size_t>(fw.cls)] = 1;
      }
    }
    const LatencyCore el =
        enoc_core(p, topo, prm.electrical, routes, {&mask, false});
    const LatencyCore op = onoc_core(p, topo, prm.optical,
                                     prm.optical.arbitration, ber,
                                     {&mask, true});
    LatencyCore out{};
    out.weight = el.weight + op.weight;
    if (out.weight > 0) {
      out.mean_latency = (el.weight * el.mean_latency +
                          op.weight * op.mean_latency) /
                         out.weight;
      out.mean_wait =
          (el.weight * el.mean_wait + op.weight * op.mean_wait) / out.weight;
    }
    out.max_zero_load = std::max(el.max_zero_load, op.max_zero_load);
    out.bottleneck_busy = std::max(el.bottleneck_busy, op.bottleneck_busy);
    for (int c = 0; c < kClasses; ++c) {
      const auto i = static_cast<std::size_t>(c);
      out.class_weight[i] = el.class_weight[i] + op.class_weight[i];
      if (out.class_weight[i] > 0) {
        out.class_latency[i] = (el.class_weight[i] * el.class_latency[i] +
                                op.class_weight[i] * op.class_latency[i]) /
                               out.class_weight[i];
      }
    }
    return out;
  }
};

}  // namespace

AnalyticResult AnalyticModel::estimate(const TraceProfile& p) const {
  AnalyticResult r;
  if (p.records == 0) return r;
  const LatencyCore c = core(p);
  r.est_mean_latency = c.mean_latency;
  r.per_class = c.class_latency;
  // Exponential tail approximation on the waiting share: p99 = slowest
  // zero-load pair + ln(100) * mean wait. Contention-free traces collapse
  // to the exact zero-load tail.
  r.est_p99 = std::max(c.mean_latency,
                       c.max_zero_load + std::log(100.0) * c.mean_wait);
  // Runtime: the dependency critical path evaluated at the estimated mean
  // latency, floored by the throughput bound of the busiest resource.
  const double chain = p.hull_eval(c.mean_latency);
  const double throughput =
      static_cast<double>(p.first_inject) + c.bottleneck_busy;
  r.est_runtime = std::max(chain, throughput);
  return r;
}

std::unique_ptr<AnalyticModel> make_model(const core::NetSpec& spec) {
  switch (spec.kind) {
    case core::NetKind::kIdeal:
      return std::make_unique<IdealModel>(spec.topo, spec.ideal);
    case core::NetKind::kEnoc:
      return std::make_unique<EnocModel>(spec.topo, spec.enoc);
    case core::NetKind::kOnocToken:
      return std::make_unique<OnocModel>(
          spec.topo, spec.onoc, onoc::Arbitration::kTokenRing, spec.fault);
    case core::NetKind::kOnocSetup:
      return std::make_unique<OnocModel>(
          spec.topo, spec.onoc, onoc::Arbitration::kPathSetup, spec.fault);
    case core::NetKind::kOnocSwmr:
      return std::make_unique<OnocModel>(
          spec.topo, spec.onoc, onoc::Arbitration::kSwmr, spec.fault);
    case core::NetKind::kHybrid:
      return std::make_unique<HybridModel>(spec.topo, spec.hybrid, spec.fault);
  }
  throw std::invalid_argument("make_model: bad NetKind");
}

AnalyticResult estimate(const TraceProfile& p, const core::NetSpec& spec) {
  return make_model(spec)->estimate(p);
}

}  // namespace sctm::analytic
