#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace sctm {

unsigned default_parallelism() {
  return std::max(1u, std::thread::hardware_concurrency());
}

namespace detail {

void parallel_for_impl(std::size_t n, void (*thunk)(void*, std::size_t),
                       void* ctx, unsigned threads) {
  if (n == 0) return;
  if (threads == 0) threads = default_parallelism();
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, n));
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) thunk(ctx, i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        thunk(ctx, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail

}  // namespace sctm
