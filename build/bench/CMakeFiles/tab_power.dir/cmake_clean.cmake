file(REMOVE_RECURSE
  "CMakeFiles/tab_power.dir/tab_power.cpp.o"
  "CMakeFiles/tab_power.dir/tab_power.cpp.o.d"
  "tab_power"
  "tab_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
