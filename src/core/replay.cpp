#include "core/replay.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <stdexcept>

namespace sctm::core {

const char* to_string(ReplayMode m) {
  switch (m) {
    case ReplayMode::kNaive: return "naive";
    case ReplayMode::kSelfCorrecting: return "self-correcting";
  }
  return "?";
}

Histogram ReplayResult::latency_histogram() const {
  Histogram h;
  for (std::size_t i = 0; i < inject_time.size(); ++i) {
    h.add(arrive_time[i] - inject_time[i]);
  }
  return h;
}

KeptDepsCsr build_kept_deps(const ReplayTrace& rt,
                            const ReplayConfig& config) {
  const std::uint32_t n = rt.size();
  const bool naive = (config.mode == ReplayMode::kNaive);
  const std::uint32_t window = config.dependency_window;

  KeptDepsCsr csr;
  csr.offset.assign(n + 1, 0);
  if (naive) return csr;

  std::size_t total = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    total += std::min<std::size_t>(rt.dep_count(i), window);
  }
  csr.deps.reserve(total);

  // Scratch reused across records: sort a record's full dependency list by
  // (slack, parent) only when it overflows the window.
  std::vector<trace::TraceDep> scratch;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (rt.dep_count(i) <= window) {
      csr.deps.insert(csr.deps.end(), rt.deps_begin(i), rt.deps_end(i));
    } else {
      // The `window` smallest-slack dependencies (ties broken by parent id
      // for determinism).
      scratch.assign(rt.deps_begin(i), rt.deps_end(i));
      std::sort(scratch.begin(), scratch.end(),
                [](const auto& a, const auto& b) {
                  if (a.slack != b.slack) return a.slack < b.slack;
                  return a.parent < b.parent;
                });
      csr.deps.insert(csr.deps.end(), scratch.begin(), scratch.begin() + window);
    }
    csr.offset[i + 1] = static_cast<std::uint32_t>(csr.deps.size());
  }
  return csr;
}

namespace {

struct PassState {
  std::vector<std::uint32_t> pending;
  std::vector<Cycle> ready;  // max(arrival' + slack) over resolved kept deps
};

}  // namespace

ReplayResult replay_once(const ReplayTrace& rt, const NetworkFactory& factory,
                         const ReplayConfig& config,
                         const std::vector<Cycle>* baseline,
                         const KeptDepsCsr* kept) {
  const auto pass_t0 = std::chrono::steady_clock::now();
  if (!rt.finalized()) {
    throw std::logic_error("replay: ReplayTrace not finalized");
  }
  const std::uint32_t n = rt.size();
  const bool naive = (config.mode == ReplayMode::kNaive);

  KeptDepsCsr local_csr;
  if (kept == nullptr) {
    local_csr = build_kept_deps(rt, config);
    kept = &local_csr;
  }

  Simulator sim;
  auto net = factory(sim);
  if (!net) throw std::logic_error("replay: factory returned null network");
  if (net->node_count() != rt.nodes()) {
    throw std::invalid_argument("replay: network size != trace nodes");
  }

  ReplayResult out;
  out.inject_time.assign(n, kNoCycle);
  out.arrive_time.assign(n, kNoCycle);

  PassState st;
  st.pending.assign(n, 0);
  st.ready.assign(n, 0);

  // Lower bound per record when its kept-dependency set is empty (anchors
  // and fully-truncated records). With kept deps, the dependency max alone
  // defines the injection time (capture equality: inject == arrival+slack).
  std::vector<Cycle> bound(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    st.pending[i] = kept->count(i);
    if (baseline) {
      bound[i] = (*baseline)[i];
    } else {
      // First pass: anchor dependency-less schedules at the captured times.
      bound[i] = st.pending[i] == 0 ? rt.inject_time(i) : 0;
    }
  }

  auto inject_record = [&](std::uint32_t idx) {
    noc::Message m;
    m.id = rt.id(idx);
    m.src = rt.src(idx);
    m.dst = rt.dst(idx);
    m.size_bytes = rt.size_bytes(idx);
    m.cls = rt.cls(idx);
    m.tag = idx;
    out.inject_time[idx] = sim.now();
    net->inject(m);
  };

  // Same-cycle injections must enter the network in capture order (record
  // ids increase with capture event order), or arbitration ties resolve
  // differently and the fixed-point property breaks. Eligible records are
  // therefore batched per cycle and flushed sorted; the flush event is
  // created when a cycle first gains a record, and network deliveries at a
  // cycle always precede it (link latencies are >= 1, so all deliveries for
  // cycle t were enqueued before t began).
  EligibilityBatcher eligible;
  auto mark_eligible = [&](std::uint32_t idx, Cycle t) {
    if (eligible.add(t, idx)) {
      auto flush = [&eligible, &inject_record, t] {
        eligible.flush(t, inject_record);
      };
      static_assert(InlineFn::fits_inline<decltype(flush)>());
      sim.schedule_late(t, std::move(flush));
    }
  };

  net->set_deliver_callback([&](const noc::Message& msg) {
    const auto idx = static_cast<std::uint32_t>(msg.tag);
    out.arrive_time[idx] = msg.arrive_time;
    if (naive) return;
    const MsgId pid = rt.id(idx);
    for (const std::uint32_t* cp = rt.children_begin(idx);
         cp != rt.children_end(idx); ++cp) {
      const std::uint32_t c = *cp;
      // Is this parent one of c's enforced deps? (kept sets are tiny)
      for (auto it = kept->begin(c); it != kept->end(c); ++it) {
        const auto& d = *it;
        if (d.parent != pid) continue;
        st.ready[c] = std::max(st.ready[c], msg.arrive_time + d.slack);
        if (--st.pending[c] == 0) {
          const Cycle t = std::max({st.ready[c], bound[c], sim.now()});
          mark_eligible(c, t);
        }
        break;
      }
    }
  });

  // Seed: everything without pending kept deps starts at its bound.
  for (std::uint32_t i = 0; i < n; ++i) {
    if (st.pending[i] == 0) mark_eligible(i, bound[i]);
  }

  sim.run();

  for (std::uint32_t i = 0; i < n; ++i) {
    if (out.arrive_time[i] == kNoCycle) {
      throw std::logic_error(
          "replay: record never delivered (dependency cycle or lost "
          "message), id=" + std::to_string(rt.id(i)));
    }
  }
  out.runtime = *std::max_element(out.arrive_time.begin(),
                                  out.arrive_time.end());
  out.events = sim.events_executed();
  out.stats = sim.stats();
  const auto pass_dt = std::chrono::steady_clock::now() - pass_t0;
  out.iteration_log.push_back(
      {1, 0.0, out.events, std::chrono::duration<double>(pass_dt).count()});
  return out;
}

ReplayResult replay(const ReplayTrace& rt, const NetworkFactory& factory,
                    const ReplayConfig& config) {
  if (!rt.finalized()) {
    throw std::logic_error("replay: ReplayTrace not finalized");
  }
  if (rt.empty()) {
    ReplayResult empty;
    return empty;
  }

  const std::uint32_t n = rt.size();
  std::uint32_t max_deps = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    max_deps = std::max(max_deps, rt.dep_count(i));
  }
  const bool single_pass = (config.mode == ReplayMode::kNaive) ||
                           (config.dependency_window >= max_deps);

  // The enforced-dependency CSR depends only on (trace, config): build it
  // once and share it across every iterative pass.
  const KeptDepsCsr csr = build_kept_deps(rt, config);

  ReplayResult result = replay_once(rt, factory, config, nullptr, &csr);
  if (single_pass) return result;

  // Iterative self-correction for truncated windows: re-derive each
  // record's lower bound from its *full* dependency list evaluated against
  // the previous pass's arrival times, then replay again, until injection
  // times stop moving.
  std::uint64_t total_events = result.events;
  std::vector<ReplayResult::IterationRecord> log =
      std::move(result.iteration_log);
  for (int iter = 2; iter <= config.max_iterations; ++iter) {
    std::vector<Cycle> bound(n, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t dc = rt.dep_count(i);
      if (dc == 0) {
        bound[i] = rt.inject_time(i);  // anchors never move
        continue;
      }
      Cycle b = 0;
      const trace::TraceDep* deps = rt.deps_begin(i);
      for (std::uint32_t k = 0; k < dc; ++k) {
        // Parents were resolved to record indices at finalize() — no id
        // lookup in the iteration hot loop.
        const std::uint32_t p = rt.dep_parent_index(i, k);
        b = std::max(b, result.arrive_time[p] + deps[k].slack);
      }
      bound[i] = b;
    }
    ReplayResult next = replay_once(rt, factory, config, &bound, &csr);
    total_events += next.events;

    double shift = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto a = next.inject_time[i];
      const auto b = result.inject_time[i];
      shift += static_cast<double>(a > b ? a - b : b - a);
    }
    shift /= static_cast<double>(n);

    ReplayResult::IterationRecord rec = next.iteration_log.front();
    rec.iter = iter;
    rec.residual = shift;
    log.push_back(rec);

    result = std::move(next);
    result.iterations = iter;
    result.residual = shift;
    if (shift < config.convergence_threshold) break;
  }
  result.events = total_events;
  result.iteration_log = std::move(log);
  return result;
}

ReplayResult replay(const trace::Trace& trace, const NetworkFactory& factory,
                    const ReplayConfig& config) {
  return replay(ReplayTrace(trace), factory, config);
}

}  // namespace sctm::core
