file(REMOVE_RECURSE
  "CMakeFiles/ext_dse.dir/ext_dse.cpp.o"
  "CMakeFiles/ext_dse.dir/ext_dse.cpp.o.d"
  "ext_dse"
  "ext_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
