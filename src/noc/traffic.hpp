// Synthetic traffic generation (open-loop) for network characterization.
//
// Standard patterns from the NoC literature. The generator injects packets
// with Bernoulli arrivals at a configured rate, runs a warmup window whose
// packets are excluded from statistics, then a measurement window, and can
// drain the network before reporting. Used by R-F2 (load-vs-error) and R-F5
// (ONOC vs ENoC load-latency curves).
#pragma once

#include <cstdint>
#include <string>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "noc/network.hpp"
#include "noc/topology.hpp"

namespace sctm::noc {

enum class TrafficPattern {
  kUniform,        // uniform random destination
  kTranspose,      // (x,y) -> (y,x)
  kBitComplement,  // dst = ~src (mod N)
  kBitReverse,     // bit-reversed node index
  kTornado,        // halfway around each dimension
  kNeighbor,       // +1 in x (nearest neighbor)
  kHotspot,        // uniform, but a fraction goes to one hot node
  kShuffle,        // perfect shuffle: rotate node index left by one bit
  kBitRotate,      // rotate node index right by one bit
};

const char* to_string(TrafficPattern p);

/// Destination for `src` under pattern `p`. For kUniform/kHotspot the result
/// is stochastic and drawn from `rng`; otherwise deterministic. Never returns
/// src (uniform redraws; deterministic patterns that map to self fall back to
/// uniform).
NodeId pattern_destination(const Topology& topo, TrafficPattern p, NodeId src,
                           Rng& rng, NodeId hotspot_node = 0,
                           double hotspot_fraction = 0.2);

class TrafficGenerator : public Component {
 public:
  struct Params {
    TrafficPattern pattern = TrafficPattern::kUniform;
    double injection_rate = 0.1;   // packets per node per cycle
    std::uint32_t packet_bytes = 64;
    MsgClass cls = MsgClass::kData;
    Cycle warmup = 1000;
    Cycle measure = 10000;
    NodeId hotspot_node = 0;
    double hotspot_fraction = 0.2;
    std::uint64_t seed = 1;
  };

  TrafficGenerator(Simulator& sim, std::string name, Network& net,
                   const Topology& topo, const Params& params);

  /// Schedules injections for warmup+measure and registers the delivery
  /// callback on the network. Call once, before sim.run().
  void start();

  /// Runs the complete experiment: start, simulate through the measurement
  /// window, then drain (run until idle). Returns executed event count.
  std::uint64_t run_to_completion();

  // -- results (measurement window only) --
  std::uint64_t offered() const { return offered_; }
  std::uint64_t measured_delivered() const { return measured_delivered_; }
  const Histogram& latency() const { return measured_latency_; }
  /// Delivered packets per node per cycle over the measurement window.
  double throughput() const;

 private:
  void on_deliver(const Message& msg);
  void tick(NodeId node);

  Network& net_;
  Topology topo_;
  Params params_;
  Rng rng_;
  std::uint64_t next_id_ = 1;
  std::uint64_t offered_ = 0;
  std::uint64_t measured_delivered_ = 0;
  Histogram measured_latency_;
  Cycle measure_start_ = 0;
  Cycle measure_end_ = 0;
};

}  // namespace sctm::noc
