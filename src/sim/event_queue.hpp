// Stable priority queue of timed events.
//
// Determinism rule: events with equal timestamps execute in the order they
// were scheduled (FIFO). This is load-bearing — the self-correction replay
// relies on reproducing identical schedules across runs, so ties must never
// be broken by heap internals. We key the heap on (time, sequence).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace sctm {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Execution bands within one timestamp: all kNormal events of a cycle run
  /// before any kLate event of that cycle. The replay engine uses the late
  /// band for injection flushes that must observe every delivery of the
  /// cycle first.
  enum Band : int { kNormal = 0, kLate = 1 };

  /// Enqueues `fn` to run at absolute time `t`. Returns a monotonically
  /// increasing sequence number (useful for tests asserting FIFO ties).
  std::uint64_t push(Cycle t, EventFn fn, Band band = kNormal);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; kNoCycle when empty.
  Cycle next_time() const;

  /// Removes and returns the earliest event (FIFO among ties).
  struct Popped {
    Cycle time;
    EventFn fn;
  };
  Popped pop();

  void clear();

  /// Total events ever pushed (event-count metric for bench R-A2).
  std::uint64_t total_pushed() const { return next_seq_; }

 private:
  struct Entry {
    Cycle time;
    int band;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.band != b.band) return a.band > b.band;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace sctm
