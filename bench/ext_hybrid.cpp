// R-E1 (extension): path-adaptive opto-electronic hybrid NoC.
//
// Reproduces the design direction of the authors' follow-up (ISPA 2013):
// overlay an optical layer on the electrical mesh and steer per message by
// distance/size. This bench sweeps the steering thresholds on a real
// workload and compares against the pure networks. Expected shape: the
// hybrid matches or beats both pure designs, because short control messages
// avoid E/O conversion while bulk data avoids multi-hop wormhole
// serialization.
#include "bench/bench_util.hpp"

#include "enoc/power.hpp"
#include "onoc/power.hpp"

namespace {

using namespace sctm;

struct Out {
  Cycle runtime;
  double mean_lat;
  double optical_frac;
};

Out run_hybrid(const fullsys::AppParams& app, int dist, std::uint32_t size) {
  core::NetSpec spec;
  spec.kind = core::NetKind::kHybrid;
  spec.hybrid.distance_threshold = dist;
  spec.hybrid.size_threshold = size;
  Simulator sim;
  auto net = core::make_factory(spec)(sim);
  fullsys::CmpSystem cmp(sim, "cmp", *net, spec.topo, {},
                         fullsys::build_app(app));
  const Cycle rt = cmp.run_to_completion();
  auto& hy = static_cast<onoc::HybridNetwork&>(*net);
  return Out{rt, net->latency_histogram().mean(), hy.optical_fraction()};
}

Cycle run_pure(const fullsys::AppParams& app, core::NetKind kind) {
  core::NetSpec spec;
  spec.kind = kind;
  Simulator sim;
  auto net = core::make_factory(spec)(sim);
  fullsys::CmpSystem cmp(sim, "cmp", *net, spec.topo, {},
                         fullsys::build_app(app));
  return cmp.run_to_completion();
}

}  // namespace

int main() {
  using namespace sctm;
  using namespace sctm::bench;

  fullsys::AppParams app;
  app.name = "fft";
  app.cores = 16;
  app.lines_per_core = 16;
  app.iterations = 2;

  const Cycle pure_el = run_pure(app, core::NetKind::kEnoc);
  const Cycle pure_op = run_pure(app, core::NetKind::kOnocToken);

  Table t("R-E1: hybrid steering-threshold sweep (fft, 16 cores)");
  t.set_header({"dist thresh", "size thresh", "runtime", "mean lat",
                "optical frac", "vs pure-el", "vs pure-op"});
  Cycle best = kNoCycle;
  for (const int dist : {1, 2, 3, 4, 6}) {
    for (const std::uint32_t size : {16u, 64u, 256u}) {
      const Out o = run_hybrid(app, dist, size);
      best = std::min(best, o.runtime);
      t.add_row({Table::fmt(static_cast<std::int64_t>(dist)),
                 Table::fmt(static_cast<std::uint64_t>(size)),
                 Table::fmt(static_cast<std::uint64_t>(o.runtime)),
                 Table::fmt(o.mean_lat, 1), Table::pct(o.optical_frac, 0),
                 Table::fmt(static_cast<double>(pure_el) /
                                static_cast<double>(o.runtime),
                            2) + "x",
                 Table::fmt(static_cast<double>(pure_op) /
                                static_cast<double>(o.runtime),
                            2) + "x"});
    }
  }
  emit(t, "re1_hybrid");
  std::printf("pure electrical %llu, pure optical %llu, best hybrid %llu\n",
              static_cast<unsigned long long>(pure_el),
              static_cast<unsigned long long>(pure_op),
              static_cast<unsigned long long>(best));
  // Shape: some steering point is at least as good as both pure designs
  // (within 2% noise).
  const bool ok = static_cast<double>(best) <=
                  1.02 * static_cast<double>(std::min(pure_el, pure_op));
  return verdict(ok, "R-E1 a hybrid steering point matches/beats both pure "
                     "networks");
}
