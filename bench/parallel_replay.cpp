// Parallel-replay bench: sharded ticking + sharded replay phases vs serial.
//
// Replays five 64-node workloads (8x8 mesh, and one 4x4x4 3D mesh) with
// 1, 2 and 4 worker threads on one long-lived ReplaySession each:
//
//  * saturated      — dense ENoC bursts, most routers hold flits most
//                     cycles: the router-tick sharding sweet spot.
//  * sparse         — a few ENoC messages at a time: the adaptive grain
//                     must keep cycles serial and cost nothing.
//  * onoc_saturated — the dense bursts over the token-ring ONoC: per-channel
//                     arbitration shards, and the dependency-dense trace
//                     keeps the session's sharded delivered-scan and batch
//                     sort busy.
//  * hybrid         — the same dependency-dense mix steered across both
//                     planes, each sharding its own per-cycle flush.
//  * mesh3d_saturated — the dense bursts on a 4x4x4 3D mesh with XYZ
//                     routing: the graph-backed topology core and the
//                     variable-radix router path under full load.
//
// Every configuration's schedule must be bit-identical to serial (the
// engine's core claim; always enforced). The speedup floors (saturated
// >= 1.5x and onoc_saturated >= 1.3x at 4 threads, sparse/hybrid >= 1.0x)
// are enforced only when the host actually has >= 4 hardware threads — on
// smaller machines the numbers are still emitted for the record, but no
// wall-clock win is physically possible and the determinism verdicts are
// the gate.
//
// Emits bench_results/BENCH_parallel_replay.json; `--smoke` runs a reduced
// configuration for CI.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "common/run_metrics.hpp"
#include "core/replay_session.hpp"
#include "enoc/enoc_network.hpp"

namespace sctm {
namespace {

/// Best-of-N wall time of fn, in seconds.
double best_seconds(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// Synthesizes a capture-shaped trace directly (all-to-all window bursts on
/// 64 nodes): `stride` cycles between bursts controls saturation — small
/// stride keeps every router busy, large stride leaves the fabric nearly
/// idle between packets. With `with_deps`, every record from the fourth
/// burst on depends on two records three bursts back (same slot and the
/// neighbouring slot): burst density is preserved — both parents' capture
/// arrivals precede the child's nominal inject, so the slack
/// (inject[child] - arrive[parent], the invariant ReplayTrace validates) is
/// small and non-negative — but each delivery now feeds the session's
/// delivered-dependency scan and every cycle's injection batch goes through
/// the (sharded) eligibility sort.
trace::Trace make_workload(int bursts, int msgs_per_burst, Cycle stride,
                           std::uint32_t bytes, bool with_deps = false,
                           NodeId nodes = 64) {
  constexpr int kLookback = 3;           // dep parents: 3 bursts back
  const Cycle nominal = with_deps ? 4 : 40;  // replay re-times anyway
  trace::Trace t;
  t.app = "synthetic";
  t.capture_network = "none";
  t.nodes = nodes;
  MsgId id = 1;
  for (int b = 0; b < bursts; ++b) {
    for (int i = 0; i < msgs_per_burst; ++i) {
      trace::TraceRecord r;
      r.id = id++;
      r.src = static_cast<NodeId>((b * 13 + i * 5) % nodes);
      r.dst = static_cast<NodeId>((i * 17 + b * 7 + 3) % nodes);
      if (r.dst == r.src) r.dst = (r.dst + 1) % nodes;
      r.size_bytes = bytes;
      r.cls = noc::MsgClass::kData;
      r.inject_time = static_cast<Cycle>(b) * stride;
      r.arrive_time = r.inject_time + nominal;
      if (with_deps && b >= kLookback) {
        const Cycle slack = static_cast<Cycle>(kLookback) * stride - nominal;
        const MsgId same_slot =
            r.id - static_cast<MsgId>(kLookback * msgs_per_burst);
        const MsgId neighbour =
            i > 0 ? same_slot - 1 : same_slot + 1;  // same parent burst
        r.deps.push_back({same_slot, slack});
        r.deps.push_back({neighbour, slack});
      }
      t.records.push_back(r);
    }
  }
  t.capture_runtime = t.records.back().arrive_time;
  return t;
}

struct ThreadPoint {
  unsigned threads = 1;
  double pass_s = 0;
  double speedup = 1.0;      // serial pass_s / this pass_s
  bool identical = false;    // schedule == serial schedule
};

struct WorkloadResult {
  std::string name;
  std::uint64_t events = 0;
  double floor4 = 1.0;  // speedup floor at 4 threads (when enforced)
  std::vector<ThreadPoint> points;
};

WorkloadResult measure(const std::string& name, const core::ReplayTrace& rt,
                       const core::NetSpec& spec, int reps, double floor4) {
  WorkloadResult out;
  out.name = name;
  out.floor4 = floor4;

  core::ReplayResult serial;
  double serial_s = 0;
  for (const unsigned threads : {1u, 2u, 4u}) {
    core::ReplayConfig cfg;
    cfg.threads = threads;
    core::ReplaySession session(rt, spec, cfg);
    session.run_pass();  // warmup: size every retained-capacity structure
    session.run_pass();
    ThreadPoint pt;
    pt.threads = threads;
    pt.pass_s = best_seconds(reps, [&] { session.run_pass(); });
    if (threads == 1) {
      serial = session.result();
      serial_s = pt.pass_s;
      pt.identical = true;
      out.events = serial.events;
    } else {
      const core::ReplayResult& res = session.result();
      pt.identical = res.inject_time == serial.inject_time &&
                     res.arrive_time == serial.arrive_time &&
                     res.runtime == serial.runtime &&
                     res.events == serial.events;
    }
    pt.speedup = pt.pass_s > 0 ? serial_s / pt.pass_s : 0.0;
    out.points.push_back(pt);
  }
  return out;
}

int run(bool smoke) {
  // Saturated: every-other-cycle bursts keep most of the 8x8 fabric holding
  // flits — dense active sets, the case sharding exists for. Sparse: the
  // same message mix spread out so the fabric mostly idles between packets.
  const int bursts = smoke ? 24 : 96;
  const trace::Trace saturated =
      make_workload(bursts, 48, /*stride=*/2, /*bytes=*/128);
  const trace::Trace sparse =
      make_workload(bursts, 4, /*stride=*/400, /*bytes=*/64);
  // Optical cases ride the dependency-dense variant: deliveries feed the
  // sharded delivered-scan and every cycle's batch goes through the sort.
  const trace::Trace dep_dense =
      make_workload(bursts, 48, /*stride=*/2, /*bytes=*/128, /*with_deps=*/true);
  const core::ReplayTrace rt_sat(saturated);
  const core::ReplayTrace rt_sparse(sparse);
  const core::ReplayTrace rt_deps(dep_dense);
  const int reps = smoke ? 3 : 10;

  const auto mesh = noc::Topology::mesh(8, 8);
  core::NetSpec hybrid_spec;
  hybrid_spec.kind = core::NetKind::kHybrid;
  hybrid_spec.topo = mesh;

  std::vector<WorkloadResult> results;
  results.push_back(
      measure("saturated", rt_sat, bench::enoc_spec(mesh), reps, 1.5));
  results.push_back(
      measure("sparse", rt_sparse, bench::enoc_spec(mesh), reps, 1.0));
  results.push_back(measure("onoc_saturated", rt_deps,
                            bench::onoc_token_spec(mesh), reps, 1.3));
  results.push_back(measure("hybrid", rt_deps, hybrid_spec, reps, 1.0));
  // 3D lattice under the same dense bursts (64 nodes as a 4x4x4 cube, XYZ
  // routing via enoc_spec's default_algo). The identity gate applies as
  // everywhere; no speedup floor beyond parity.
  results.push_back(measure("mesh3d_saturated", rt_sat,
                            bench::enoc_spec(noc::Topology::mesh3d(4, 4, 4)),
                            reps, 1.0));

  const unsigned hw = default_parallelism();
  const bool enforce_speedup = hw >= 4;

  Table table("parallel replay: sharded ticking + replay phases vs serial, 8x8");
  table.set_header({"workload", "threads", "ms/pass", "speedup", "identical"});
  for (const WorkloadResult& w : results) {
    for (const ThreadPoint& pt : w.points) {
      table.add_row({w.name, std::to_string(pt.threads),
                     Table::fmt(pt.pass_s * 1e3, 3), Table::fmt(pt.speedup, 2),
                     pt.identical ? "yes" : "NO"});
    }
  }

  RunMetrics m = bench::bench_metrics(table, "BENCH_parallel_replay");
  m.manifest.set("hardware_threads", static_cast<std::int64_t>(hw));
  m.manifest.set("speedup_floors_enforced", enforce_speedup);
  m.manifest.set("reps", static_cast<std::int64_t>(reps));
  {
    JsonWriter j;
    j.begin_object();
    j.key("table");
    write_table_json(j, table);
    j.key("workloads");
    j.begin_array();
    for (const WorkloadResult& w : results) {
      j.begin_object();
      j.key("workload");
      j.value(w.name);
      j.key("events_per_pass");
      j.value(static_cast<std::uint64_t>(w.events));
      j.key("points");
      j.begin_array();
      for (const ThreadPoint& pt : w.points) {
        j.begin_object();
        j.key("threads");
        j.value(static_cast<std::uint64_t>(pt.threads));
        j.key("pass_seconds");
        j.value(pt.pass_s);
        j.key("speedup");
        j.value(pt.speedup);
        j.key("bit_identical");
        j.value(pt.identical);
        j.end_object();
      }
      j.end_array();
      j.end_object();
    }
    j.end_array();
    j.key("bars");
    j.begin_array();
    for (const WorkloadResult& w : results) {
      for (const ThreadPoint& pt : w.points) {
        if (pt.threads == 1) continue;
        j.begin_object();
        j.key("name");
        j.value(w.name + "_speedup_t" + std::to_string(pt.threads));
        j.key("value");
        j.value(pt.speedup);
        j.key("floor");
        j.value(pt.threads == 4 ? w.floor4 : 1.0);
        j.end_object();
      }
    }
    j.end_array();
    j.end_object();
    m.set_results_json(std::move(j).str());
  }
  bench::emit(table, "BENCH_parallel_replay", m);

  int rc = 0;
  for (const WorkloadResult& w : results) {
    for (const ThreadPoint& pt : w.points) {
      rc |= bench::verdict(
          pt.identical, w.name + " t" + std::to_string(pt.threads) +
                            ": schedule bit-identical to serial");
    }
  }
  if (enforce_speedup) {
    for (const WorkloadResult& w : results) {
      const ThreadPoint& pt4 = w.points.back();
      char floor_s[32];
      std::snprintf(floor_s, sizeof floor_s, "%.1f", w.floor4);
      rc |= bench::verdict(pt4.speedup >= w.floor4,
                           w.name + ": >= " + floor_s + "x at 4 threads");
    }
  } else {
    std::printf("note: host has %u hardware thread(s); speedup floors "
                "reported but not enforced\n", hw);
  }
  return rc;
}

}  // namespace
}  // namespace sctm

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return sctm::run(smoke);
}
