// L2 bank / directory unit tests against a recording fake fabric: each test
// drives one protocol scenario message-by-message and checks the exact
// response sequence — finer-grained than the system-level tests, and the
// place where the transaction state machine's edges are pinned down.
#include "fullsys/l2bank.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace sctm::fullsys {
namespace {

struct SentMsg {
  ProtoMsg type;
  NodeId src;
  NodeId dst;
  std::uint64_t line;
};

class FakeFabric : public Fabric {
 public:
  MsgId send(ProtoMsg type, NodeId src, NodeId dst, std::uint64_t line,
             const std::vector<MsgId>&) override {
    sent.push_back({type, src, dst, line});
    return next_id++;
  }
  NodeId home_of(std::uint64_t line) const override {
    return static_cast<NodeId>(line % 4);
  }
  NodeId mc_for(std::uint64_t) const override { return 3; }

  std::vector<SentMsg> sent;
  MsgId next_id = 1000;
};

class L2BankTest : public ::testing::Test {
 protected:
  L2BankTest() : bank_(sim_, "bank", /*id=*/0, params(), fabric_) {}

  static FullSysParams params() {
    FullSysParams p;
    p.l2_sets = 4;
    p.l2_ways = 2;
    return p;
  }

  /// Runs pending events (the bank's send_after delays).
  void settle() { sim_.run(); }

  const SentMsg& last() const { return fabric_.sent.back(); }

  Simulator sim_;
  FakeFabric fabric_;
  L2Bank bank_;
  MsgId in_id_ = 1;
};

TEST_F(L2BankTest, ColdGetSFetchesFromMemory) {
  bank_.on_message(ProtoMsg::kGetS, /*src=*/1, /*line=*/4, in_id_++);
  settle();
  ASSERT_EQ(fabric_.sent.size(), 1u);
  EXPECT_EQ(last().type, ProtoMsg::kMemRead);
  EXPECT_EQ(last().dst, 3);
  EXPECT_FALSE(bank_.quiescent());

  bank_.on_message(ProtoMsg::kMemData, 3, 4, in_id_++);
  settle();
  ASSERT_EQ(fabric_.sent.size(), 2u);
  EXPECT_EQ(last().type, ProtoMsg::kData);
  EXPECT_EQ(last().dst, 1);
  EXPECT_FALSE(bank_.quiescent());  // awaiting unblock

  bank_.on_message(ProtoMsg::kUnblock, 1, 4, in_id_++);
  settle();
  EXPECT_TRUE(bank_.quiescent());
}

TEST_F(L2BankTest, SecondGetSHitsWithoutMemory) {
  bank_.on_message(ProtoMsg::kGetS, 1, 4, in_id_++);
  settle();
  bank_.on_message(ProtoMsg::kMemData, 3, 4, in_id_++);
  settle();
  bank_.on_message(ProtoMsg::kUnblock, 1, 4, in_id_++);
  settle();
  fabric_.sent.clear();

  bank_.on_message(ProtoMsg::kGetS, 2, 4, in_id_++);
  settle();
  ASSERT_EQ(fabric_.sent.size(), 1u);
  EXPECT_EQ(last().type, ProtoMsg::kData);
  EXPECT_EQ(last().dst, 2);
  bank_.on_message(ProtoMsg::kUnblock, 2, 4, in_id_++);
  settle();
  EXPECT_TRUE(bank_.quiescent());
}

TEST_F(L2BankTest, GetMInvalidatesSharers) {
  // Two sharers.
  for (const NodeId s : {1, 2}) {
    bank_.on_message(ProtoMsg::kGetS, s, 4, in_id_++);
    settle();
    if (s == 1) {
      bank_.on_message(ProtoMsg::kMemData, 3, 4, in_id_++);
      settle();
    }
    bank_.on_message(ProtoMsg::kUnblock, s, 4, in_id_++);
    settle();
  }
  fabric_.sent.clear();

  // Core 0 writes: both sharers must get Inv.
  bank_.on_message(ProtoMsg::kGetM, 0, 4, in_id_++);
  settle();
  ASSERT_EQ(fabric_.sent.size(), 2u);
  EXPECT_EQ(fabric_.sent[0].type, ProtoMsg::kInv);
  EXPECT_EQ(fabric_.sent[1].type, ProtoMsg::kInv);

  bank_.on_message(ProtoMsg::kInvAck, 1, 4, in_id_++);
  settle();
  EXPECT_EQ(fabric_.sent.size(), 2u);  // waits for the second ack
  bank_.on_message(ProtoMsg::kInvAck, 2, 4, in_id_++);
  settle();
  ASSERT_EQ(fabric_.sent.size(), 3u);
  EXPECT_EQ(last().type, ProtoMsg::kDataM);
  EXPECT_EQ(last().dst, 0);
}

TEST_F(L2BankTest, UpgradingSharerIsNotInvalidated) {
  bank_.on_message(ProtoMsg::kGetS, 1, 4, in_id_++);
  settle();
  bank_.on_message(ProtoMsg::kMemData, 3, 4, in_id_++);
  settle();
  bank_.on_message(ProtoMsg::kUnblock, 1, 4, in_id_++);
  settle();
  fabric_.sent.clear();

  // The only sharer upgrades: no Inv needed, DataM directly.
  bank_.on_message(ProtoMsg::kGetM, 1, 4, in_id_++);
  settle();
  ASSERT_EQ(fabric_.sent.size(), 1u);
  EXPECT_EQ(last().type, ProtoMsg::kDataM);
  EXPECT_EQ(last().dst, 1);
}

TEST_F(L2BankTest, GetSAgainstDirtyOwnerRecalls) {
  bank_.on_message(ProtoMsg::kGetM, 1, 4, in_id_++);
  settle();
  bank_.on_message(ProtoMsg::kMemData, 3, 4, in_id_++);
  settle();
  bank_.on_message(ProtoMsg::kUnblock, 1, 4, in_id_++);
  settle();
  fabric_.sent.clear();

  bank_.on_message(ProtoMsg::kGetS, 2, 4, in_id_++);
  settle();
  ASSERT_EQ(fabric_.sent.size(), 1u);
  EXPECT_EQ(last().type, ProtoMsg::kRecall);
  EXPECT_EQ(last().dst, 1);

  bank_.on_message(ProtoMsg::kRecallData, 1, 4, in_id_++);
  settle();
  ASSERT_EQ(fabric_.sent.size(), 2u);
  EXPECT_EQ(last().type, ProtoMsg::kData);
  EXPECT_EQ(last().dst, 2);
}

TEST_F(L2BankTest, CrossingPutMResolvesRecall) {
  bank_.on_message(ProtoMsg::kGetM, 1, 4, in_id_++);
  settle();
  bank_.on_message(ProtoMsg::kMemData, 3, 4, in_id_++);
  settle();
  bank_.on_message(ProtoMsg::kUnblock, 1, 4, in_id_++);
  settle();
  bank_.on_message(ProtoMsg::kGetS, 2, 4, in_id_++);
  settle();  // Recall is in flight to node 1
  fabric_.sent.clear();

  // Node 1 evicted concurrently: its PutM crosses the Recall.
  bank_.on_message(ProtoMsg::kPutM, 1, 4, in_id_++);
  settle();
  // Bank must (a) ack the writeback, (b) serve the reader.
  ASSERT_EQ(fabric_.sent.size(), 2u);
  EXPECT_EQ(fabric_.sent[0].type, ProtoMsg::kWbAck);
  EXPECT_EQ(fabric_.sent[0].dst, 1);
  EXPECT_EQ(fabric_.sent[1].type, ProtoMsg::kData);
  EXPECT_EQ(fabric_.sent[1].dst, 2);

  // The late stale answer is dropped silently.
  bank_.on_message(ProtoMsg::kRecallStale, 1, 4, in_id_++);
  settle();
  EXPECT_EQ(fabric_.sent.size(), 2u);
}

TEST_F(L2BankTest, RequestsOnBusyLineAreDeferredFifo) {
  bank_.on_message(ProtoMsg::kGetS, 1, 4, in_id_++);
  settle();  // busy: WaitMem
  bank_.on_message(ProtoMsg::kGetS, 2, 4, in_id_++);
  bank_.on_message(ProtoMsg::kGetS, 0, 4, in_id_++);
  settle();
  // Nothing served yet beyond the MemRead.
  ASSERT_EQ(fabric_.sent.size(), 1u);

  bank_.on_message(ProtoMsg::kMemData, 3, 4, in_id_++);
  settle();
  bank_.on_message(ProtoMsg::kUnblock, 1, 4, in_id_++);
  settle();
  bank_.on_message(ProtoMsg::kUnblock, 2, 4, in_id_++);
  settle();
  bank_.on_message(ProtoMsg::kUnblock, 0, 4, in_id_++);
  settle();
  // Data to 1 (original), then deferred 2, then deferred 0 — in order.
  ASSERT_EQ(fabric_.sent.size(), 4u);
  EXPECT_EQ(fabric_.sent[1].dst, 1);
  EXPECT_EQ(fabric_.sent[2].dst, 2);
  EXPECT_EQ(fabric_.sent[3].dst, 0);
  EXPECT_TRUE(bank_.quiescent());
}

TEST_F(L2BankTest, PutMFromNonOwnerThrows) {
  EXPECT_THROW(bank_.on_message(ProtoMsg::kPutM, 1, 4, in_id_++),
               std::logic_error);
}

TEST_F(L2BankTest, StrayAcksThrow) {
  EXPECT_THROW(bank_.on_message(ProtoMsg::kInvAck, 1, 4, in_id_++),
               std::logic_error);
  EXPECT_THROW(bank_.on_message(ProtoMsg::kRecallData, 1, 4, in_id_++),
               std::logic_error);
  EXPECT_THROW(bank_.on_message(ProtoMsg::kMemData, 3, 4, in_id_++),
               std::logic_error);
  EXPECT_THROW(bank_.on_message(ProtoMsg::kUnblock, 1, 4, in_id_++),
               std::logic_error);
}

TEST_F(L2BankTest, DirtyL2VictimWritesBackToMemory) {
  // Fill both ways of set 0 with dirty (PutM-absorbed) lines, then force a
  // third insert into the same set: the LRU dirty victim must MemWrite.
  for (const std::uint64_t line : {4u, 8u}) {
    bank_.on_message(ProtoMsg::kGetM, 1, line, in_id_++);
    settle();
    bank_.on_message(ProtoMsg::kMemData, 3, line, in_id_++);
    settle();
    bank_.on_message(ProtoMsg::kUnblock, 1, line, in_id_++);
    settle();
    bank_.on_message(ProtoMsg::kPutM, 1, line, in_id_++);
    settle();
  }
  fabric_.sent.clear();
  // Lines 4, 8, 12 all map to set 0 (4 sets): inserting 12's data evicts.
  bank_.on_message(ProtoMsg::kGetS, 2, 12, in_id_++);
  settle();
  bank_.on_message(ProtoMsg::kMemData, 3, 12, in_id_++);
  settle();
  bool wrote_back = false;
  for (const auto& m : fabric_.sent) {
    if (m.type == ProtoMsg::kMemWrite) wrote_back = true;
  }
  EXPECT_TRUE(wrote_back);
}

}  // namespace
}  // namespace sctm::fullsys
