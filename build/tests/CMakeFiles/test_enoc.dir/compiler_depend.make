# Empty compiler generated dependencies file for test_enoc.
# This may be replaced when dependencies are built.
