#include "onoc/params.hpp"

#include "onoc/devices.hpp"

namespace sctm::onoc {

const char* to_string(Arbitration a) {
  switch (a) {
    case Arbitration::kTokenRing: return "token-ring";
    case Arbitration::kPathSetup: return "path-setup";
    case Arbitration::kSwmr: return "swmr";
    case Arbitration::kSharedPool: return "shared-pool";
  }
  return "?";
}

Cycle OnocParams::tof_cycles(int tile_hops, int fabric_width) const {
  if (tile_hops <= 0) return 1;
  const double tile_pitch_cm =
      die_edge_cm / static_cast<double>(fabric_width > 0 ? fabric_width : 1);
  const double s =
      time_of_flight_s(tile_pitch_cm * static_cast<double>(tile_hops),
                       waveguide);
  const Cycle c = units::seconds_to_cycles(s, clock_ghz * 1e9);
  return c == 0 ? 1 : c;
}

OnocParams OnocParams::from_config(const Config& cfg) {
  OnocParams p;
  p.wavelengths =
      static_cast<int>(cfg.get_int("onoc.wavelengths", p.wavelengths));
  p.gbps_per_wavelength =
      cfg.get_double("onoc.gbps_per_wavelength", p.gbps_per_wavelength);
  p.clock_ghz = cfg.get_double("onoc.clock_ghz", p.clock_ghz);
  p.eo_latency = static_cast<Cycle>(
      cfg.get_int("onoc.eo_latency", static_cast<std::int64_t>(p.eo_latency)));
  p.oe_latency = static_cast<Cycle>(
      cfg.get_int("onoc.oe_latency", static_cast<std::int64_t>(p.oe_latency)));
  p.guard_cycles = static_cast<Cycle>(cfg.get_int(
      "onoc.guard_cycles", static_cast<std::int64_t>(p.guard_cycles)));
  p.token_hop_latency = static_cast<Cycle>(cfg.get_int(
      "onoc.token_hop_latency",
      static_cast<std::int64_t>(p.token_hop_latency)));
  p.die_edge_cm = cfg.get_double("onoc.die_edge_cm", p.die_edge_cm);
  p.ctrl_msg_bytes = static_cast<std::uint32_t>(
      cfg.get_int("onoc.ctrl_msg_bytes", p.ctrl_msg_bytes));

  const std::string arb = cfg.get_string("onoc.arbitration", "token-ring");
  if (arb == "token-ring") p.arbitration = Arbitration::kTokenRing;
  else if (arb == "path-setup") p.arbitration = Arbitration::kPathSetup;
  else if (arb == "swmr") p.arbitration = Arbitration::kSwmr;
  else if (arb == "shared-pool") p.arbitration = Arbitration::kSharedPool;
  else {
    throw std::invalid_argument("onoc.arbitration: unknown scheme " + arb);
  }
  p.pool_channels =
      static_cast<int>(cfg.get_int("onoc.pool_channels", p.pool_channels));

  p.ctrl = enoc::EnocParams::from_config(cfg);
  // The control mesh carries only short control packets: one vnet suffices
  // unless the config says otherwise.
  p.ctrl.vnets = static_cast<int>(cfg.get_int("onoc.ctrl_vnets", 1));
  return p;
}

}  // namespace sctm::onoc
