file(REMOVE_RECURSE
  "CMakeFiles/tab_casestudy.dir/tab_casestudy.cpp.o"
  "CMakeFiles/tab_casestudy.dir/tab_casestudy.cpp.o.d"
  "tab_casestudy"
  "tab_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
