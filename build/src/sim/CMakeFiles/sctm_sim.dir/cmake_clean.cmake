file(REMOVE_RECURSE
  "CMakeFiles/sctm_sim.dir/event_queue.cpp.o"
  "CMakeFiles/sctm_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/sctm_sim.dir/simulator.cpp.o"
  "CMakeFiles/sctm_sim.dir/simulator.cpp.o.d"
  "libsctm_sim.a"
  "libsctm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sctm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
