// R-E2 (extension): design-space exploration at trace speed.
//
// The workflow the whole pipeline exists for: capture once (execution-
// driven, expensive), then rank a 25-point network design space — electrical
// buffer/VC/routing variants and optical wavelength/arbitration variants —
// by self-correcting replay alone, in parallel. Prints the ranked table and
// cross-checks the top pick against an execution-driven run.
#include "bench/bench_util.hpp"

#include "core/explore.hpp"

int main() {
  using namespace sctm;
  using namespace sctm::bench;

  fullsys::AppParams app;
  app.name = "fft";
  app.cores = 16;
  app.lines_per_core = 16;
  app.iterations = 2;

  const auto capture = core::run_execution(app, enoc_spec(), {});

  std::vector<core::Candidate> candidates;
  // Electrical variants: buffering, VCs, routing, arbiter.
  for (const int vcs : {1, 2, 4}) {
    for (const int depth : {2, 4, 8}) {
      core::NetSpec s = enoc_spec();
      s.enoc.vcs_per_vnet = vcs;
      s.enoc.buffer_depth = depth;
      candidates.push_back({"enoc-v" + std::to_string(vcs) + "-b" +
                                std::to_string(depth),
                            s});
    }
  }
  {
    core::NetSpec s = enoc_spec();
    s.enoc.routing = noc::RoutingAlgo::kOddEven;
    s.enoc.adaptive = true;
    candidates.push_back({"enoc-oddeven-adaptive", s});
    s.enoc.arbiter = enoc::ArbiterKind::kMatrix;
    candidates.push_back({"enoc-oddeven-matrix", s});
  }
  // Optical variants: wavelengths x arbitration.
  for (const int lambdas : {8, 16, 32, 64}) {
    for (const auto kind :
         {core::NetKind::kOnocToken, core::NetKind::kOnocSwmr,
          core::NetKind::kOnocSetup}) {
      core::NetSpec s;
      s.kind = kind;
      s.onoc.wavelengths = lambdas;
      candidates.push_back(
          {std::string(core::to_string(kind)) + "-l" + std::to_string(lambdas),
           s});
    }
  }
  // Hybrid steering points.
  for (const int dist : {2, 4}) {
    core::NetSpec s;
    s.kind = core::NetKind::kHybrid;
    s.hybrid.distance_threshold = dist;
    candidates.push_back({"hybrid-d" + std::to_string(dist), s});
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto ranked = core::explore(capture.trace, candidates);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  Table t("R-E2: 25-point design space ranked by sctm replay (fft trace)");
  t.set_header({"rank", "design", "pred. runtime", "mean lat", "p99 lat"});
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    t.add_row({Table::fmt(static_cast<std::uint64_t>(i + 1)), ranked[i].name,
               Table::fmt(static_cast<std::uint64_t>(ranked[i].runtime)),
               Table::fmt(ranked[i].mean_latency, 1),
               Table::fmt(static_cast<std::uint64_t>(ranked[i].p99_latency))});
  }
  emit(t, "re2_dse");
  std::printf("explored %zu designs in %.2f s (capture cost %.2f s, "
              "amortized once)\n",
              ranked.size(), wall, capture.wall_seconds);

  // Determinism: a serial re-run must produce the identical ranking.
  const auto again = core::explore(capture.trace, candidates, {}, 1);
  bool same = again.size() == ranked.size();
  for (std::size_t i = 0; same && i < ranked.size(); ++i) {
    same = again[i].name == ranked[i].name &&
           again[i].runtime == ranked[i].runtime;
  }
  return verdict(same && ranked.size() == candidates.size(),
                 "R-E2 exploration is complete and thread-count invariant");
}
