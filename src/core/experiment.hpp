// Config-driven experiments: build workloads, networks and replay settings
// from a flat Config so whole studies are reproducible from one text file.
//
// Key groups:
//   app.name / app.cores / app.lines_per_core / app.iterations / app.seed
//   capture.kind, target.kind   (ideal|enoc|onoc-token|onoc-setup|
//                                onoc-swmr|hybrid)
//   net.mesh_width / net.mesh_height  (fabric, shared by both networks)
//   enoc.* / onoc.* / fullsys.*       (forwarded to the module parsers)
//   fault.*                           (fault injection; see fault/fault_spec)
//   replay.mode (naive|sctm), replay.window, replay.max_iterations
//   experiment.mode = exec | replay | accuracy
#pragma once

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/driver.hpp"
#include "core/error_metrics.hpp"

namespace sctm::core {

/// Parses a network kind name; throws std::invalid_argument on junk.
NetKind net_kind_from(const std::string& name);

/// NetSpec from config: `<which>.kind` selects the network, the fabric comes
/// from net.mesh_width/height, module parameters from enoc.*/onoc.*, and the
/// fault regime from fault.* (absent keys = inert spec).
NetSpec netspec_from_config(const Config& cfg, const std::string& which);

fullsys::AppParams app_from_config(const Config& cfg);
ReplayConfig replay_from_config(const Config& cfg);

/// Runs the experiment the config describes and returns the result rows:
///   exec     - execution-driven run on `target`
///   replay   - capture on `capture`, replay on `target`
///   accuracy - capture on `capture`, naive+sctm replay on `target`,
///              execution-driven truth on `target`, error report
Table run_experiment(const Config& cfg);

}  // namespace sctm::core
