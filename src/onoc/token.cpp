#include "onoc/token.hpp"

#include <stdexcept>

namespace sctm::onoc {

TokenRing::TokenRing(int nodes, Cycle hop_latency)
    : nodes_(nodes), hop_(hop_latency) {
  if (nodes < 1 || hop_latency < 1) {
    throw std::invalid_argument("TokenRing: nodes and hop latency must be >=1");
  }
}

NodeId TokenRing::position_at(Cycle t) const {
  if (t <= free_at_) return pos_;
  const Cycle steps = (t - free_at_) / hop_;
  return static_cast<NodeId>(
      (static_cast<Cycle>(pos_) + steps) % static_cast<Cycle>(nodes_));
}

void TokenRing::lose_token(Cycle t, Cycle regen) {
  if (t < last_call_) {
    throw std::logic_error("TokenRing: lose_token() out of time order");
  }
  last_call_ = t;
  const Cycle base = t > free_at_ ? t : free_at_;
  pos_ = 0;  // regenerated at the ring's home node
  free_at_ = base + regen;
}

Cycle TokenRing::acquire(NodeId s, Cycle t, Cycle hold) {
  if (s < 0 || s >= nodes_) throw std::invalid_argument("TokenRing: bad node");
  if (t < last_call_) {
    throw std::logic_error("TokenRing: acquire() out of time order");
  }
  last_call_ = t;

  // The earliest instant the channel could be granted again.
  const Cycle t0 = t > free_at_ ? t : free_at_;
  // Token position at t0 (rotates while idle).
  const NodeId at = position_at(t0);
  const Cycle dist =
      (static_cast<Cycle>(s) - static_cast<Cycle>(at) +
       static_cast<Cycle>(nodes_)) % static_cast<Cycle>(nodes_);
  const Cycle grant = t0 + dist * hop_;
  pos_ = s;
  free_at_ = grant + hold;
  ++grants_;
  return grant;
}

}  // namespace sctm::onoc
