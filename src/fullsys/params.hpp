// CMP substrate configuration.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/units.hpp"

namespace sctm::fullsys {

/// Front-end simulation granularity. Timing results are identical across
/// modes (the same cycle-level schedule); only the *cost* of the
/// execution-driven simulation changes — kPerCycle approximates an
/// instruction-interpreting front end (Simics/GEMS class), which is what
/// makes trace-driven exploration economically interesting (R-F3).
enum class CoreDetail {
  kFolded,    // fold compute+hit chains into single events (fast, default)
  kPerOp,     // one kernel event per operation
  kPerCycle,  // one kernel event per compute cycle (instruction-level cost)
};

struct FullSysParams {
  // Private L1 per core (line = 64 B): 64 sets x 4 ways = 16 KiB.
  int l1_sets = 64;
  int l1_ways = 4;
  // Shared L2, one bank per node: 256 sets x 8 ways = 128 KiB per bank.
  int l2_sets = 256;
  int l2_ways = 8;

  Cycle l1_hit_latency = 2;
  Cycle l1_miss_detect = 1;  // added before the request leaves the core
  Cycle l2_latency = 6;      // bank access/processing
  Cycle dir_latency = 2;     // directory-only decisions (acks, invalidates)
  Cycle fill_latency = 1;    // L1 fill after reply arrival
  Cycle mem_latency = 120;   // DRAM access
  Cycle mem_gap = 4;         // memory controller service interval

  /// Memory-controller nodes; empty = corners of the fabric (set by
  /// CmpSystem from the topology).
  std::vector<NodeId> mc_nodes;
  NodeId barrier_home = 0;
  CoreDetail core_detail = CoreDetail::kFolded;

  void validate() const;

  /// Reads "fullsys.*" keys with these defaults.
  static FullSysParams from_config(const Config& cfg);
};

}  // namespace sctm::fullsys
