// Shared helpers for the experiment-reproduction benches.
//
// Every bench binary regenerates one table or figure of the (reconstructed)
// evaluation: it prints the rows as an aligned table and drops a CSV under
// ./bench_results/ for plotting. Binaries exit non-zero if the experiment's
// sanity conditions fail, so `for b in build/bench/*; do $b; done` doubles
// as an end-to-end check.
#pragma once

#include <filesystem>
#include <string>

#include "common/table.hpp"
#include "core/driver.hpp"
#include "core/error_metrics.hpp"

namespace sctm::bench {

/// The six workload kernels at the standard evaluation size (16 cores).
inline std::vector<fullsys::AppParams> standard_apps(int cores = 16,
                                                     int lines = 16,
                                                     int iters = 2) {
  std::vector<fullsys::AppParams> out;
  for (const auto& name : fullsys::app_names()) {
    fullsys::AppParams p;
    p.name = name;
    p.cores = cores;
    p.lines_per_core = lines;
    p.iterations = iters;
    out.push_back(p);
  }
  return out;
}

inline core::NetSpec enoc_spec(noc::Topology topo = noc::Topology::mesh(4, 4)) {
  core::NetSpec s;
  s.kind = core::NetKind::kEnoc;
  s.topo = topo;
  return s;
}

inline core::NetSpec onoc_token_spec(
    noc::Topology topo = noc::Topology::mesh(4, 4)) {
  core::NetSpec s;
  s.kind = core::NetKind::kOnocToken;
  s.topo = topo;
  return s;
}

inline core::NetSpec onoc_setup_spec(
    noc::Topology topo = noc::Topology::mesh(4, 4)) {
  core::NetSpec s;
  s.kind = core::NetKind::kOnocSetup;
  s.topo = topo;
  return s;
}

inline core::NetSpec ideal_spec(Cycle per_hop,
                                noc::Topology topo = noc::Topology::mesh(4,
                                                                         4)) {
  core::NetSpec s;
  s.kind = core::NetKind::kIdeal;
  s.topo = topo;
  s.ideal.per_hop_latency = per_hop;
  return s;
}

/// Prints the table and writes bench_results/<slug>.csv.
inline void emit(const Table& table, const std::string& slug) {
  std::fputs(table.to_ascii().c_str(), stdout);
  std::fflush(stdout);
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (!ec) table.write_csv("bench_results/" + slug + ".csv");
}

/// Exit helper: prints a verdict line and returns the process exit code.
inline int verdict(bool ok, const std::string& what) {
  std::printf("[%s] %s\n", ok ? "OK" : "FAIL", what.c_str());
  return ok ? 0 : 1;
}

}  // namespace sctm::bench
