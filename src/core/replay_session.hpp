// Reusable replay sessions: one Simulator + one network + all pass-scoped
// buffers, recycled across passes and across runs.
//
// The replay engines are multi-pass by nature (iterative self-correction)
// and multi-run by usage (design-space exploration replays one trace over
// dozens of candidates). The original engine rebuilt the Simulator, the
// network and every per-pass vector from scratch for each pass — paying
// construction, allocation and page-faulting costs that dwarf the event
// kernel on small traces. A ReplaySession instead owns all of that state
// and threads the reset() protocol through it between passes:
//
//   sim_.reset()    — queue cleared with its tie-break counter rewound,
//                     stat values zeroed in place (entries survive, so
//                     components' cached references stay valid),
//   net_->reset()   — routers / arbitration / pending tables back to
//                     freshly-constructed state, capacity retained.
//
// Reset-reuse is bit-identical to fresh construction (the differential
// tests replay every network kind both ways and compare full schedules),
// and passes 2..N run without a single heap allocation (asserted by the
// alloc-counting test).
//
// replay_once()/replay() in replay.hpp are now thin wrappers over a
// throwaway session; exploration keeps one long-lived session per worker
// thread and rebind()s it only when the candidate's NetSpec differs.
//
// Sharded replay phases (config.threads != 1): beyond handing the pool to
// the network tick, the session shards its own hot loops — the seed scan
// (pending-count fill over the kept-deps CSR), the per-cycle delivered-
// dependency scan, the eligibility-batch sort and the iterative engine's
// bound/residual recompute. Every parallel phase is pure (per-shard output
// lists or disjoint writes) and is followed by a serial drain in ascending
// shard order — the serial engine's exact visit order — so schedules,
// sequence numbers and the full stat registry are bit-identical at any
// thread count. Sparse cycles stay serial via per-phase adaptive grains,
// and warmed-up passes stay allocation-free. See DESIGN.md §10.
#pragma once

#include <memory>
#include <vector>

#include "core/driver.hpp"
#include "core/replay.hpp"

namespace sctm {
class WorkerPool;
}

namespace sctm::core {

class ReplaySession {
 public:
  /// Binds the session to `rt` (borrowed; must outlive the session) and
  /// builds the network once via `factory`. `kept` optionally borrows a
  /// precomputed enforced-dependency CSR (must outlive the session and match
  /// `config`); when null the session builds and owns its own.
  /// config.threads != 1 makes the session own a WorkerPool and install it
  /// on the kernel; backends that support partitioned ticking (ENoC) shard
  /// their cycles over it, bit-identically to serial.
  ReplaySession(const ReplayTrace& rt, const NetworkFactory& factory,
                const ReplayConfig& config, const KeptDepsCsr* kept = nullptr);

  /// Spec-aware binding: like the factory constructor but the session
  /// remembers the NetSpec it built, enabling the rebind(NetSpec) fast path.
  ReplaySession(const ReplayTrace& rt, const NetSpec& spec,
                const ReplayConfig& config, const KeptDepsCsr* kept = nullptr);

  ~ReplaySession();

  ReplaySession(const ReplaySession&) = delete;
  ReplaySession& operator=(const ReplaySession&) = delete;

  /// Full engine on the current network: one pass in naive / full-window
  /// mode, iterative refinement to a fixed point for truncated windows.
  /// Exactly replay()'s semantics (and used to implement it). The returned
  /// reference is into the session; it stays valid until the next run.
  /// Includes a final stat snapshot.
  const ReplayResult& run();

  /// One replay pass: reset, seed from `baseline` lower bounds (captured
  /// anchors when null), drain. Exactly replay_once()'s semantics except
  /// that the stat snapshot is deferred to snapshot_stats() — after a
  /// warmup pass this makes repeated calls allocation-free, which the
  /// steady-state alloc test asserts. The result reference stays valid
  /// until the next pass.
  const ReplayResult& run_pass(const std::vector<Cycle>* baseline = nullptr);

  /// Rebuilds the network with a new factory (topology or parameters
  /// changed), erasing the old network's stat entries. The trace binding,
  /// dependency CSR and every pass buffer are kept — this is what
  /// exploration does between candidates whose NetSpec differs; candidates
  /// with equal specs skip it and pure-reset instead. Drops any NetSpec
  /// binding (a factory is opaque, so the fast path can't be keyed).
  void rebind(const NetworkFactory& factory);

  /// Spec-aware rebind. Diffs `spec` against the bound spec memberwise:
  /// equal specs are a no-op; same kind + topology with only parameter
  /// changes patch the live network in place (Ideal: set_params, ENoC:
  /// reparameterize — no reconstruction, stat entries survive); anything
  /// else (kind/topology change, or ONoC/Hybrid whose parameters are baked
  /// into token rings and channel tables at construction) falls back to the
  /// full factory rebuild. Either way the session ends reset and bound to
  /// `spec` — in-place vs rebuild is observable only through
  /// last_rebind_in_place() and speed.
  void rebind(const NetSpec& spec);

  /// Whether the most recent rebind(NetSpec) took the in-place fast path.
  bool last_rebind_in_place() const { return last_rebind_in_place_; }

  /// Copies the simulator's stat registry into result().stats (the one
  /// allocating step run_pass() defers).
  void snapshot_stats();

  /// Moves the result out (for the wrapper API). The session's result
  /// buffers are left empty; the next run()/run_pass() re-sizes them.
  ReplayResult take_result();

  const ReplayResult& result() const { return result_; }
  const ReplayConfig& config() const { return config_; }
  const noc::Network& network() const { return *net_; }
  noc::Network& network() { return *net_; }

  /// Forces every per-phase adaptive grain — the network tick, the
  /// delivered-dependency scan, the seed/bound scans and the eligibility
  /// batch sort — to `grain`. 0 shards every phase whenever the session owns
  /// a pool; tests use this to engage sharding on small traces. Applies to
  /// the currently bound network (rebind to a new network reverts its tick
  /// grain to the backend default).
  void set_parallel_grains_for_test(unsigned grain);

 private:
  void bind_network(const NetworkFactory& factory);
  void run_pass_prepared();  // bound_ already filled; core of every pass
  void inject_record(std::uint32_t idx);
  void mark_eligible(std::uint32_t idx, Cycle t);
  void on_deliver(const noc::Message& msg);
  void ensure_cycle_event(Cycle t);
  void on_cycle(Cycle t);
  void drain_deliveries();

  const ReplayTrace& rt_;
  ReplayConfig config_;
  bool naive_;

  KeptDepsCsr own_csr_;        // used only when kept was not borrowed
  const KeptDepsCsr* kept_;

  /// Owned worker pool (null when config.threads == 1). Declared before
  /// sim_ so it outlives the kernel holding the non-owning pointer.
  std::unique_ptr<WorkerPool> pool_;
  Simulator sim_;
  std::unique_ptr<noc::Network> net_;
  NetSpec bound_spec_;
  bool has_spec_ = false;
  bool last_rebind_in_place_ = false;

  // Pass-scoped state, sized once to rt_.size() and recycled every pass.
  std::vector<std::uint32_t> pending_;  // unresolved kept deps per record
  std::vector<Cycle> ready_;   // max(arrival' + slack) over resolved deps
  std::vector<Cycle> bound_;   // per-record lower bound for this pass
  std::vector<Cycle> prev_inject_;  // previous pass's schedule (residual)
  EligibilityBatcher eligible_;
  std::vector<ReplayResult::IterationRecord> log_;  // run()'s pass log

  // Sharded-phase state. Deliveries of the current cycle buffer here (in
  // delivery order) for the late-band dependency scan; the scan's parallel
  // phase appends (child, ready-contribution) hits to per-shard lists that
  // the serial drain applies in ascending shard order — exactly the order
  // the per-delivery handler visited them serially. The seed scan's
  // eligible-record lists work the same way. All capacity-retaining.
  struct DepHit {
    std::uint32_t child;
    Cycle ready;
  };
  std::vector<std::uint32_t> delivered_;
  std::vector<std::vector<DepHit>> scan_shards_;
  std::vector<std::vector<std::uint32_t>> seed_shards_;
  std::vector<double> residual_shards_;
  /// Cycles with a scheduled on_cycle event (the unified late-band event:
  /// delivered scan, then eligibility flush — one per cycle).
  FlatMap<Cycle, std::uint32_t> cycle_event_at_;
  unsigned scan_grain_ = 8;    // delivered msgs per lane before sharding
  unsigned record_grain_ = 256;  // records per lane (seed/bound/residual)

  ReplayResult result_;
  double pass_wall_ = 0.0;  // wall seconds of the latest pass
};

}  // namespace sctm::core
