// Two-level stable event queue: a banded calendar wheel over a far heap.
//
// Determinism rule (unchanged from the original single-heap queue): events
// execute in (time, band, seq) order — all kNormal events of a cycle before
// any kLate event of that cycle, FIFO by scheduling order within a band.
// This is load-bearing: the self-correction replay relies on reproducing
// identical schedules across runs, so ties must never be broken by container
// internals.
//
// Structure. Nearly every schedule in the simulator lands within a few cycles
// of `now` (schedule_in(0..k) from routers, caches and the replay engine), so
// the front kWheelSize cycles live in a circular wheel of per-cycle buckets:
// push is an append to the bucket's per-band vector (FIFO by construction,
// no comparisons, no rebalancing), and a 64-bit occupancy bitmap finds the
// next nonempty bucket with one rotate + count-trailing-zeros. Events beyond
// the wheel horizon go to a conventional (time, band, seq)-keyed binary heap
// and migrate into their bucket when the window reaches them. Migrated
// entries are prepended: the window only slides forward, so every far entry
// for a cycle predates — and therefore out-ranks by seq — every direct wheel
// entry for that cycle.
//
// Allocation. Bucket vectors are retained across cycles (clear() keeps
// capacity), events are InlineFn (56-byte small-buffer callables), so the
// steady-state push/dispatch path performs zero heap allocations.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/inline_fn.hpp"
#include "common/units.hpp"

namespace sctm {

/// Event callables are small-buffer-optimized and move-only; captures up to
/// InlineFn::kInlineCapacity (56 bytes) are stored without heap allocation.
using EventFn = InlineFn;

class EventQueue {
 public:
  /// Execution bands within one timestamp: all kNormal events of a cycle run
  /// before any kLate event of that cycle. The replay engine uses the late
  /// band for injection flushes that must observe every delivery of the
  /// cycle first.
  enum Band : int { kNormal = 0, kLate = 1 };

  /// Cycles covered by the calendar wheel, counting from the current window
  /// base. Power of two; schedules at `base + kWheelSize` or later take the
  /// far-heap path.
  static constexpr std::size_t kWheelSize = 64;

  /// Enqueues `fn` to run at absolute time `t`. Returns a monotonically
  /// increasing sequence number (useful for tests asserting FIFO ties).
  std::uint64_t push(Cycle t, EventFn fn, Band band = kNormal);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Time of the earliest pending event; kNoCycle when empty.
  Cycle next_time() const;

  /// Removes and returns the earliest event (FIFO among ties).
  struct Popped {
    Cycle time;
    EventFn fn;
  };
  Popped pop();

  /// Batch dispatch: executes every event of cycle `t` — which must be
  /// next_time() — in (band, seq) order, including events scheduled onto
  /// cycle `t` while draining. Re-checks the normal band before each late
  /// event, exactly like per-event popping would. Checks `stop` before each
  /// dispatch and leaves the remainder queued when it trips. Increments
  /// *executed once per event after invoking it (matching the historical
  /// per-event pop loop, so mid-event observers see an identical count).
  /// Returns the number executed.
  std::uint64_t drain_cycle(Cycle t, const bool& stop,
                            std::uint64_t* executed = nullptr);

  void clear();

  /// Session reset: clear() plus a sequence-counter rewind, so the queue is
  /// observationally identical to a freshly constructed one (total_pushed()
  /// restarts at zero, tie-break seqs repeat bit-exactly) while every bucket
  /// vector, the far heap and the migration scratch retain their grown
  /// capacity. This is what makes replay passes 2..N allocation-free.
  void reset();

  /// Total events ever pushed (event-count metric for bench R-A2).
  std::uint64_t total_pushed() const { return next_seq_; }

 private:
  static constexpr Cycle kWheelMask = kWheelSize - 1;

  struct Slot {
    std::uint64_t seq;
    EventFn fn;
  };
  struct Bucket {
    std::vector<Slot> band[2];
    std::size_t head[2] = {0, 0};  // dispatch cursor per band
  };
  struct FarEntry {
    Cycle time;
    int band;
    std::uint64_t seq;
    EventFn fn;
  };
  struct FarLater {
    bool operator()(const FarEntry& a, const FarEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.band != b.band) return a.band > b.band;
      return a.seq > b.seq;
    }
  };

  bool in_window(Cycle t) const {
    return t >= wheel_base_ && t - wheel_base_ < kWheelSize;
  }
  /// Slides the window to `t` (all earlier buckets are empty when the caller
  /// services the earliest pending time) and folds far-heap entries for `t`
  /// into the front of its bucket.
  void service(Cycle t);
  void retire_bucket(Bucket& b, Cycle t);
  Popped pop_far();

  std::array<Bucket, kWheelSize> wheel_{};
  std::uint64_t occupied_ = 0;  // bit (c & kWheelMask) set iff bucket nonempty
  Cycle wheel_base_ = 0;        // first cycle of the current window
  std::size_t wheel_count_ = 0;

  std::vector<FarEntry> far_;  // min-heap via std::push_heap/pop_heap
  std::vector<Slot> migrate_scratch_[2];

  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace sctm
