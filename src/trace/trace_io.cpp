#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace sctm::trace {
namespace {

constexpr char kMagic[8] = {'S', 'C', 'T', 'M', 'T', 'R', 'C', '1'};

// Serialization is fully buffered: the writer encodes the whole trace into
// one byte vector and issues a single ostream::write; the reader slurps the
// stream once and decodes from a memory cursor. The encoded bytes are
// field-for-field identical to the old per-field stream I/O (the golden
// round-trip test pins the layout), but a million-record trace now costs two
// syscall-ish stream operations instead of ~20 per record.

class ByteWriter {
 public:
  void reserve(std::size_t n) { buf_.reserve(n); }

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = buf_.size();
    buf_.resize(n + sizeof v);
    std::memcpy(buf_.data() + n, &v, sizeof v);
  }

  void put_bytes(const char* data, std::size_t len) {
    buf_.insert(buf_.end(), data, data + len);
  }

  void put_string(const std::string& s) {
    put<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    put_bytes(s.data(), s.size());
  }

  const std::vector<char>& bytes() const { return buf_; }

 private:
  std::vector<char> buf_;
};

class ByteReader {
 public:
  ByteReader(const char* data, std::size_t len) : data_(data), len_(len) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (len_ - pos_ < sizeof(T)) {
      throw std::runtime_error("trace: truncated input");
    }
    T v{};
    std::memcpy(&v, data_ + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }

  void skip(std::size_t n) {
    if (len_ - pos_ < n) throw std::runtime_error("trace: truncated input");
    pos_ += n;
  }

  std::string get_string() {
    const auto len = get<std::uint32_t>();
    if (len > (1u << 20)) {
      throw std::runtime_error("trace: absurd string length");
    }
    if (len_ - pos_ < len) throw std::runtime_error("trace: truncated string");
    std::string s(data_ + pos_, len);
    pos_ += len;
    return s;
  }

 private:
  const char* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

std::size_t encoded_size(const Trace& trace) {
  // magic + 2 length-prefixed strings + nodes/runtime/seed/count header.
  std::size_t n = sizeof kMagic + 4 + trace.app.size() + 4 +
                  trace.capture_network.size() + 4 + 8 + 8 + 8;
  for (const auto& r : trace.records) {
    n += 8 + 4 + 4 + 4 + 1 + 1 + 8 + 8 + 2 + r.deps.size() * 16;
  }
  return n;
}

}  // namespace

void write_binary(const Trace& trace, std::ostream& out) {
  ByteWriter w;
  w.reserve(encoded_size(trace));
  w.put_bytes(kMagic, sizeof kMagic);
  w.put_string(trace.app);
  w.put_string(trace.capture_network);
  w.put<std::int32_t>(trace.nodes);
  w.put<std::uint64_t>(trace.capture_runtime);
  w.put<std::uint64_t>(trace.seed);
  w.put<std::uint64_t>(trace.records.size());
  for (const auto& r : trace.records) {
    w.put<std::uint64_t>(r.id);
    w.put<std::int32_t>(r.src);
    w.put<std::int32_t>(r.dst);
    w.put<std::uint32_t>(r.size_bytes);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(r.cls));
    w.put<std::uint8_t>(r.proto);
    w.put<std::uint64_t>(r.inject_time);
    w.put<std::uint64_t>(r.arrive_time);
    w.put<std::uint16_t>(static_cast<std::uint16_t>(r.deps.size()));
    for (const auto& d : r.deps) {
      w.put<std::uint64_t>(d.parent);
      w.put<std::uint64_t>(d.slack);
    }
  }
  out.write(w.bytes().data(),
            static_cast<std::streamsize>(w.bytes().size()));
  if (!out) throw std::runtime_error("trace: write failed");
}

Trace read_binary(std::istream& in) {
  std::vector<char> bytes;
  {
    char chunk[1 << 16];
    while (in) {
      in.read(chunk, sizeof chunk);
      bytes.insert(bytes.end(), chunk, chunk + in.gcount());
    }
    if (in.bad()) throw std::runtime_error("trace: read failed");
  }
  ByteReader r(bytes.data(), bytes.size());

  char magic[8];
  bool ok = bytes.size() >= sizeof magic;
  if (ok) {
    std::memcpy(magic, bytes.data(), sizeof magic);
    ok = std::memcmp(magic, kMagic, sizeof kMagic) == 0;
  }
  if (!ok) throw std::runtime_error("trace: bad magic (not an SCTM trace?)");
  r.skip(sizeof kMagic);

  Trace t;
  t.app = r.get_string();
  t.capture_network = r.get_string();
  t.nodes = r.get<std::int32_t>();
  t.capture_runtime = r.get<std::uint64_t>();
  t.seed = r.get<std::uint64_t>();
  const auto count = r.get<std::uint64_t>();
  t.records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceRecord rec;
    rec.id = r.get<std::uint64_t>();
    rec.src = r.get<std::int32_t>();
    rec.dst = r.get<std::int32_t>();
    rec.size_bytes = r.get<std::uint32_t>();
    rec.cls = static_cast<noc::MsgClass>(r.get<std::uint8_t>());
    rec.proto = r.get<std::uint8_t>();
    rec.inject_time = r.get<std::uint64_t>();
    rec.arrive_time = r.get<std::uint64_t>();
    const auto deps = r.get<std::uint16_t>();
    rec.deps.reserve(deps);
    for (int d = 0; d < deps; ++d) {
      TraceDep dep;
      dep.parent = r.get<std::uint64_t>();
      dep.slack = r.get<std::uint64_t>();
      rec.deps.push_back(dep);
    }
    t.records.push_back(std::move(rec));
  }
  return t;
}

void write_binary_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace: cannot open " + path);
  write_binary(trace, out);
}

Trace read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return read_binary(in);
}

std::string to_text(const Trace& trace) {
  std::ostringstream ss;
  ss << "# app=" << trace.app << " net=" << trace.capture_network
     << " nodes=" << trace.nodes << " runtime=" << trace.capture_runtime
     << " records=" << trace.records.size() << '\n';
  for (const auto& r : trace.records) {
    ss << r.id << ' ' << r.src << "->" << r.dst << " bytes=" << r.size_bytes
       << " cls=" << noc::to_string(r.cls) << " t=" << r.inject_time << ".."
       << r.arrive_time << " deps=[";
    for (std::size_t i = 0; i < r.deps.size(); ++i) {
      if (i) ss << ',';
      ss << r.deps[i].parent << '+' << r.deps[i].slack;
    }
    ss << "]\n";
  }
  return ss.str();
}

}  // namespace sctm::trace
