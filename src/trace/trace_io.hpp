// Trace serialization: a compact binary format plus a human-readable text
// dump. Binary layout (little-endian, fixed-width):
//
//   magic "SCTMTRC1" (8 bytes)
//   u32 app_len, app bytes
//   u32 net_len, net bytes
//   i32 nodes, u64 capture_runtime, u64 seed, u64 record_count
//   per record:
//     u64 id, i32 src, i32 dst, u32 size, u8 cls, u8 proto,
//     u64 inject, u64 arrive, u16 dep_count, dep_count x (u64 parent,
//     u64 slack)
#pragma once

#include <iosfwd>
#include <string>

#include "trace/record.hpp"

namespace sctm::trace {

void write_binary(const Trace& trace, std::ostream& out);
Trace read_binary(std::istream& in);

void write_binary_file(const Trace& trace, const std::string& path);
Trace read_binary_file(const std::string& path);

/// One line per record: debugging/diffing aid, not meant to be re-parsed.
std::string to_text(const Trace& trace);

}  // namespace sctm::trace
