// Property-style sweeps: lossless delivery, determinism, and stability under
// load across topologies / routings / loads (parameterized gtest).
#include <gtest/gtest.h>

#include <tuple>

#include "enoc/enoc_network.hpp"
#include "noc/traffic.hpp"

namespace sctm::enoc {
namespace {

using noc::Topology;
using noc::TrafficPattern;

struct Scenario {
  const char* name;
  Topology topo;
  noc::RoutingAlgo algo;
  TrafficPattern pattern;
  double rate;
};

class EnocLoadSweep : public ::testing::TestWithParam<Scenario> {};

TEST_P(EnocLoadSweep, LosslessAndDrains) {
  const auto& sc = GetParam();
  Simulator sim;
  EnocParams p;
  p.routing = sc.algo;
  EnocNetwork net(sim, "enoc", sc.topo, p);
  noc::TrafficGenerator::Params tp;
  tp.pattern = sc.pattern;
  tp.injection_rate = sc.rate;
  tp.warmup = 200;
  tp.measure = 2000;
  tp.seed = 1234;
  noc::TrafficGenerator gen(sim, "gen", net, sc.topo, tp);
  gen.run_to_completion();
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.injected_count(), net.delivered_count())
      << "lost packets in " << sc.name;
  EXPECT_GT(gen.measured_delivered(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnocLoadSweep,
    ::testing::Values(
        Scenario{"mesh_xy_uniform_low", Topology::mesh(4, 4),
                 noc::RoutingAlgo::kXY, TrafficPattern::kUniform, 0.05},
        Scenario{"mesh_xy_uniform_high", Topology::mesh(4, 4),
                 noc::RoutingAlgo::kXY, TrafficPattern::kUniform, 0.30},
        Scenario{"mesh_xy_transpose", Topology::mesh(4, 4),
                 noc::RoutingAlgo::kXY, TrafficPattern::kTranspose, 0.20},
        Scenario{"mesh_xy_hotspot", Topology::mesh(4, 4),
                 noc::RoutingAlgo::kXY, TrafficPattern::kHotspot, 0.10},
        Scenario{"mesh_yx_uniform", Topology::mesh(4, 4),
                 noc::RoutingAlgo::kYX, TrafficPattern::kUniform, 0.15},
        Scenario{"mesh_oddeven_uniform", Topology::mesh(4, 4),
                 noc::RoutingAlgo::kOddEven, TrafficPattern::kUniform, 0.15},
        Scenario{"mesh_oddeven_tornado", Topology::mesh(4, 4),
                 noc::RoutingAlgo::kOddEven, TrafficPattern::kTornado, 0.15},
        Scenario{"mesh8_xy_bitcomp", Topology::mesh(8, 8),
                 noc::RoutingAlgo::kXY, TrafficPattern::kBitComplement, 0.08},
        Scenario{"torus_dor_uniform", Topology::torus(4, 4),
                 noc::RoutingAlgo::kTorusDor, TrafficPattern::kUniform, 0.20},
        Scenario{"torus_dor_tornado", Topology::torus(4, 4),
                 noc::RoutingAlgo::kTorusDor, TrafficPattern::kTornado, 0.20},
        Scenario{"ring_shortest_uniform", Topology::ring(8),
                 noc::RoutingAlgo::kRingShortest, TrafficPattern::kUniform,
                 0.10},
        Scenario{"ring_neighbor", Topology::ring(8),
                 noc::RoutingAlgo::kRingShortest, TrafficPattern::kNeighbor,
                 0.30}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return std::string(info.param.name);
    });

TEST(EnocDeterminism, IdenticalRunsBitIdentical) {
  auto run = [] {
    Simulator sim;
    const auto topo = Topology::mesh(4, 4);
    EnocParams p;
    EnocNetwork net(sim, "enoc", topo, p);
    noc::TrafficGenerator::Params tp;
    tp.injection_rate = 0.2;
    tp.warmup = 100;
    tp.measure = 1500;
    tp.seed = 77;
    noc::TrafficGenerator gen(sim, "gen", net, topo, tp);
    gen.run_to_completion();
    return std::tuple{net.delivered_count(), gen.latency().mean(),
                      gen.latency().percentile(0.99), sim.now()};
  };
  EXPECT_EQ(run(), run());
}

TEST(EnocBehaviour, LatencyGrowsWithLoad) {
  auto mean_latency = [](double rate) {
    Simulator sim;
    const auto topo = Topology::mesh(4, 4);
    EnocNetwork net(sim, "enoc", topo, EnocParams{});
    noc::TrafficGenerator::Params tp;
    tp.injection_rate = rate;
    tp.warmup = 300;
    tp.measure = 3000;
    tp.seed = 5;
    noc::TrafficGenerator gen(sim, "gen", net, topo, tp);
    gen.run_to_completion();
    return gen.latency().mean();
  };
  const double lo = mean_latency(0.02);
  const double hi = mean_latency(0.25);
  EXPECT_GT(hi, lo * 1.1) << "congestion should raise latency";
}

TEST(EnocBehaviour, SaturationThroughputBelowOffered) {
  Simulator sim;
  const auto topo = Topology::mesh(4, 4);
  EnocNetwork net(sim, "enoc", topo, EnocParams{});
  noc::TrafficGenerator::Params tp;
  tp.injection_rate = 0.9;  // far beyond saturation for 5-flit packets
  tp.warmup = 200;
  tp.measure = 2000;
  tp.seed = 6;
  noc::TrafficGenerator gen(sim, "gen", net, topo, tp);
  gen.run_to_completion();
  EXPECT_LT(gen.throughput(), 0.5);
  // Still lossless even past saturation.
  EXPECT_EQ(net.injected_count(), net.delivered_count());
}

TEST(EnocBehaviour, BiggerMeshHasLongerUniformLatency) {
  auto mean_latency = [](int side) {
    Simulator sim;
    const auto topo = Topology::mesh(side, side);
    EnocNetwork net(sim, "enoc", topo, EnocParams{});
    noc::TrafficGenerator::Params tp;
    tp.injection_rate = 0.02;
    tp.warmup = 200;
    tp.measure = 2000;
    tp.seed = 8;
    noc::TrafficGenerator gen(sim, "gen", net, topo, tp);
    gen.run_to_completion();
    return gen.latency().mean();
  };
  EXPECT_GT(mean_latency(8), mean_latency(4));
}

}  // namespace
}  // namespace sctm::enoc
