// Arbiters used by the router's allocators.
//
// RoundRobinArbiter: classic rotating-priority arbiter — fair over time,
// deterministic given request history. MatrixArbiter: least-recently-granted
// matrix arbiter, which some designs prefer for switch allocation; both are
// exposed so the ablation benches can compare.
#pragma once

#include <cstdint>
#include <vector>

namespace sctm::enoc {

class Arbiter {
 public:
  virtual ~Arbiter() = default;
  /// Picks one set bit of `requests` (index) or -1 when none. Updates
  /// internal priority state only when a grant is issued.
  virtual int grant(const std::vector<bool>& requests) = 0;
  virtual void reset() = 0;
};

class RoundRobinArbiter final : public Arbiter {
 public:
  explicit RoundRobinArbiter(int width) : width_(width) {}

  int grant(const std::vector<bool>& requests) override;
  void reset() override { next_ = 0; }

 private:
  int width_;
  int next_ = 0;  // highest-priority index for the next grant
};

class MatrixArbiter final : public Arbiter {
 public:
  explicit MatrixArbiter(int width);

  int grant(const std::vector<bool>& requests) override;
  void reset() override;

 private:
  int width_;
  // prio_[i][j] == true means i beats j.
  std::vector<std::vector<bool>> prio_;
};

}  // namespace sctm::enoc
