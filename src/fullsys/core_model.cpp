#include "fullsys/core_model.hpp"

#include <stdexcept>

namespace sctm::fullsys {

Core::Core(Simulator& sim, std::string name, NodeId id, std::vector<Op> stream,
           const FullSysParams& params, Fabric& fabric)
    : Component(sim, std::move(name)),
      id_(id),
      stream_(std::move(stream)),
      params_(params),
      fabric_(fabric),
      l1_(params.l1_sets, params.l1_ways),
      stat_loads_(counter("loads")),
      stat_stores_(counter("stores")),
      stat_writebacks_(counter("writebacks")),
      stat_barriers_(counter("barriers")) {}

void Core::start() {
  sim().schedule_in(0, [this] { step(); });
}

void Core::step() {
  // Fold hits and computes into one pass; schedule only at blocking points.
  // In the detailed front-end modes, re-enter per op (or per compute cycle)
  // instead of folding: the cycle-level schedule is identical, but the
  // kernel pays an event per instruction the way an interpreting front end
  // would (see FullSysParams::core_detail).
  Cycle acc = 0;
  while (pc_ < stream_.size()) {
    const Op& op = stream_[pc_];
    switch (op.kind) {
      case OpKind::kCompute:
        if (params_.core_detail == CoreDetail::kPerCycle && op.arg > 1) {
          if (compute_remaining_ == 0) compute_remaining_ = op.arg;
          if (--compute_remaining_ == 0) ++pc_;
          sim().schedule_in(acc + 1, [this] { step(); });
          return;
        }
        if (params_.core_detail == CoreDetail::kPerOp) {
          ++pc_;
          sim().schedule_in(acc + op.arg, [this] { step(); });
          return;
        }
        acc += op.arg;
        ++pc_;
        break;
      case OpKind::kLoad:
      case OpKind::kStore: {
        // Cache state changes underneath us (Inv/Recall) while compute time
        // accrues, so a lookup is only valid at its actual simulated time:
        // re-enter at now+acc before touching the cache.
        if (acc > 0) {
          sim().schedule_in(acc, [this] { step(); });
          return;
        }
        const bool is_write = (op.kind == OpKind::kStore);
        (is_write ? stat_stores_ : stat_loads_)++;
        const LineState st = l1_.lookup(op.arg);
        const bool hit =
            (st == LineState::kM) || (st == LineState::kS && !is_write);
        if (hit) {
          if (params_.core_detail != CoreDetail::kFolded) {
            ++pc_;
            sim().schedule_in(params_.l1_hit_latency, [this] { step(); });
            return;
          }
          acc += params_.l1_hit_latency;
          ++pc_;
          break;
        }
        // Miss (including S->M upgrade): block and issue after the accrued
        // compute time plus miss-detect latency.
        miss_line_ = op.arg;
        miss_is_write_ = is_write;
        acc += params_.l1_hit_latency + params_.l1_miss_detect;
        sim().schedule_in(acc, [this] { issue_miss(); });
        return;
      }
      case OpKind::kBarrier: {
        ++stat_barriers_;
        blocked_ = Blocked::kBarrier;
        const MsgId cause = last_unblock_;
        sim().schedule_in(acc, [this, cause] {
          fabric_.send(ProtoMsg::kBarArrive, id_, params_.barrier_home, 0,
                       cause == kInvalidMsg ? std::vector<MsgId>{}
                                            : std::vector<MsgId>{cause});
        });
        ++pc_;
        return;
      }
      case OpKind::kDone:
        done_ = true;
        finish_time_ = now() + acc;
        return;
    }
  }
  done_ = true;
  finish_time_ = now() + acc;
}

void Core::issue_miss() {
  const std::vector<MsgId> causes =
      last_unblock_ == kInvalidMsg ? std::vector<MsgId>{}
                                   : std::vector<MsgId>{last_unblock_};
  // Upgrade misses keep the S line in place (no victim needed). Cold misses
  // may need a victim way; dirty victims write back first.
  const LineState have = l1_.probe(miss_line_);
  if (have == LineState::kI) {
    const auto victim = l1_.victim_for(miss_line_);
    if (victim && victim->state == LineState::kM) {
      ++stat_writebacks_;
      l1_.invalidate(victim->line_no);  // stale Recalls get RecallStale
      blocked_ = Blocked::kWriteback;
      fabric_.send(ProtoMsg::kPutM, id_, fabric_.home_of(victim->line_no),
                   victim->line_no, causes);
      return;
    }
    if (victim) l1_.invalidate(victim->line_no);  // silent clean eviction
  }
  blocked_ = Blocked::kMiss;
  fabric_.send(miss_is_write_ ? ProtoMsg::kGetM : ProtoMsg::kGetS, id_,
               fabric_.home_of(miss_line_), miss_line_, causes);
}

void Core::on_message(ProtoMsg type, std::uint64_t line, MsgId msg_id) {
  switch (type) {
    case ProtoMsg::kInv: {
      // Unblock-closed transactions guarantee an Inv never chases a data
      // grant; an Inv while we wait on this very line targets our *stale*
      // sharer registration (we hold nothing) and is acked immediately.
      l1_.invalidate(line);  // may be absent after a silent eviction
      fabric_.send(ProtoMsg::kInvAck, id_, fabric_.home_of(line), line,
                   {msg_id});
      return;
    }
    case ProtoMsg::kRecall: {
      if (l1_.probe(line) == LineState::kM) {
        l1_.invalidate(line);
        fabric_.send(ProtoMsg::kRecallData, id_, fabric_.home_of(line), line,
                     {msg_id});
      } else {
        fabric_.send(ProtoMsg::kRecallStale, id_, fabric_.home_of(line), line,
                     {msg_id});
      }
      return;
    }
    case ProtoMsg::kWbAck: {
      if (blocked_ != Blocked::kWriteback) {
        throw std::logic_error(name() + ": unexpected WbAck");
      }
      // The victim way is free; issue the demand request now.
      last_unblock_ = msg_id;
      blocked_ = Blocked::kNone;
      issue_miss();
      return;
    }
    case ProtoMsg::kData:
    case ProtoMsg::kDataM: {
      if (blocked_ != Blocked::kMiss || line != miss_line_) {
        throw std::logic_error(name() + ": unexpected data reply");
      }
      const auto evicted = l1_.insert(
          line, type == ProtoMsg::kDataM ? LineState::kM : LineState::kS);
      if (evicted && evicted->state == LineState::kM) {
        // Cannot happen: the victim way was cleared at issue_miss().
        throw std::logic_error(name() + ": fill evicted a dirty line");
      }
      blocked_ = Blocked::kNone;
      last_unblock_ = msg_id;
      ++pc_;  // the memory op completes
      // Confirm receipt so the directory can close the transaction and
      // start the next one for this line.
      fabric_.send(ProtoMsg::kUnblock, id_, fabric_.home_of(line), line,
                   {msg_id});
      sim().schedule_in(params_.fill_latency, [this] { step(); });
      return;
    }
    case ProtoMsg::kBarRelease: {
      if (blocked_ != Blocked::kBarrier) {
        throw std::logic_error(name() + ": unexpected barrier release");
      }
      blocked_ = Blocked::kNone;
      last_unblock_ = msg_id;
      sim().schedule_in(0, [this] { step(); });
      return;
    }
    default:
      throw std::logic_error(name() + ": unexpected message " +
                             std::string(to_string(type)));
  }
}

}  // namespace sctm::fullsys
