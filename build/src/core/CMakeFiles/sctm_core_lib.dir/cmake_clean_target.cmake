file(REMOVE_RECURSE
  "libsctm_core_lib.a"
)
