file(REMOVE_RECURSE
  "CMakeFiles/fig_speed_gap.dir/fig_speed_gap.cpp.o"
  "CMakeFiles/fig_speed_gap.dir/fig_speed_gap.cpp.o.d"
  "fig_speed_gap"
  "fig_speed_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_speed_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
