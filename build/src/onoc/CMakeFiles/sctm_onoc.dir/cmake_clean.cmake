file(REMOVE_RECURSE
  "CMakeFiles/sctm_onoc.dir/devices.cpp.o"
  "CMakeFiles/sctm_onoc.dir/devices.cpp.o.d"
  "CMakeFiles/sctm_onoc.dir/hybrid_network.cpp.o"
  "CMakeFiles/sctm_onoc.dir/hybrid_network.cpp.o.d"
  "CMakeFiles/sctm_onoc.dir/loss.cpp.o"
  "CMakeFiles/sctm_onoc.dir/loss.cpp.o.d"
  "CMakeFiles/sctm_onoc.dir/onoc_network.cpp.o"
  "CMakeFiles/sctm_onoc.dir/onoc_network.cpp.o.d"
  "CMakeFiles/sctm_onoc.dir/params.cpp.o"
  "CMakeFiles/sctm_onoc.dir/params.cpp.o.d"
  "CMakeFiles/sctm_onoc.dir/power.cpp.o"
  "CMakeFiles/sctm_onoc.dir/power.cpp.o.d"
  "CMakeFiles/sctm_onoc.dir/token.cpp.o"
  "CMakeFiles/sctm_onoc.dir/token.cpp.o.d"
  "libsctm_onoc.a"
  "libsctm_onoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sctm_onoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
