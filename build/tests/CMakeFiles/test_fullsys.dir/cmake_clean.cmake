file(REMOVE_RECURSE
  "CMakeFiles/test_fullsys.dir/fullsys/test_app.cpp.o"
  "CMakeFiles/test_fullsys.dir/fullsys/test_app.cpp.o.d"
  "CMakeFiles/test_fullsys.dir/fullsys/test_cache.cpp.o"
  "CMakeFiles/test_fullsys.dir/fullsys/test_cache.cpp.o.d"
  "CMakeFiles/test_fullsys.dir/fullsys/test_cmp_system.cpp.o"
  "CMakeFiles/test_fullsys.dir/fullsys/test_cmp_system.cpp.o.d"
  "CMakeFiles/test_fullsys.dir/fullsys/test_core_model.cpp.o"
  "CMakeFiles/test_fullsys.dir/fullsys/test_core_model.cpp.o.d"
  "CMakeFiles/test_fullsys.dir/fullsys/test_fullsys_params.cpp.o"
  "CMakeFiles/test_fullsys.dir/fullsys/test_fullsys_params.cpp.o.d"
  "CMakeFiles/test_fullsys.dir/fullsys/test_l2bank.cpp.o"
  "CMakeFiles/test_fullsys.dir/fullsys/test_l2bank.cpp.o.d"
  "CMakeFiles/test_fullsys.dir/fullsys/test_protocol_fuzz.cpp.o"
  "CMakeFiles/test_fullsys.dir/fullsys/test_protocol_fuzz.cpp.o.d"
  "test_fullsys"
  "test_fullsys.pdb"
  "test_fullsys[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fullsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
