#include "fullsys/cache.hpp"

#include <stdexcept>

namespace sctm::fullsys {

Cache::Cache(int sets, int ways) : sets_(sets), ways_(ways) {
  if (sets < 1 || (sets & (sets - 1)) != 0) {
    throw std::invalid_argument("Cache: sets must be a power of two");
  }
  if (ways < 1) throw std::invalid_argument("Cache: ways must be >= 1");
  ways_storage_.resize(static_cast<std::size_t>(sets) * ways);
}

Cache::Way* Cache::find(std::uint64_t line_no) {
  const int s = set_of(line_no);
  for (int w = 0; w < ways_; ++w) {
    auto& way = ways_storage_[static_cast<std::size_t>(s) * ways_ + w];
    if (way.state != LineState::kI && way.line_no == line_no) return &way;
  }
  return nullptr;
}

const Cache::Way* Cache::find(std::uint64_t line_no) const {
  return const_cast<Cache*>(this)->find(line_no);
}

LineState Cache::probe(std::uint64_t line_no) const {
  const Way* w = find(line_no);
  return w ? w->state : LineState::kI;
}

LineState Cache::lookup(std::uint64_t line_no) {
  Way* w = find(line_no);
  if (!w) {
    ++misses_;
    return LineState::kI;
  }
  ++hits_;
  w->lru = ++stamp_;
  return w->state;
}

std::optional<Cache::Line> Cache::victim_for(std::uint64_t line_no) const {
  const int s = set_of(line_no);
  const Way* lru = nullptr;
  for (int w = 0; w < ways_; ++w) {
    const auto& way = ways_storage_[static_cast<std::size_t>(s) * ways_ + w];
    if (way.state == LineState::kI) return std::nullopt;  // free way
    if (way.line_no == line_no) return std::nullopt;      // update in place
    if (!lru || way.lru < lru->lru) lru = &way;
  }
  return Line{lru->line_no, lru->state};
}

std::optional<Cache::Line> Cache::insert(std::uint64_t line_no,
                                         LineState state) {
  if (state == LineState::kI) {
    throw std::invalid_argument("Cache: cannot insert an invalid line");
  }
  const int s = set_of(line_no);
  Way* target = nullptr;
  Way* lru = nullptr;
  for (int w = 0; w < ways_; ++w) {
    auto& way = ways_storage_[static_cast<std::size_t>(s) * ways_ + w];
    if (way.state != LineState::kI && way.line_no == line_no) {
      way.state = state;
      way.lru = ++stamp_;
      return std::nullopt;
    }
    if (way.state == LineState::kI && !target) target = &way;
    if (!lru || way.lru < lru->lru) lru = &way;
  }
  std::optional<Line> evicted;
  if (!target) {
    target = lru;
    evicted = Line{target->line_no, target->state};
  }
  target->line_no = line_no;
  target->state = state;
  target->lru = ++stamp_;
  return evicted;
}

bool Cache::set_state(std::uint64_t line_no, LineState state) {
  Way* w = find(line_no);
  if (!w) return false;
  if (state == LineState::kI) {
    w->state = LineState::kI;
    return true;
  }
  w->state = state;
  return true;
}

bool Cache::invalidate(std::uint64_t line_no) {
  return set_state(line_no, LineState::kI);
}

}  // namespace sctm::fullsys
