#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/rng.hpp"

namespace sctm {
namespace {

TEST(Histogram, EmptyBehaviour) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, BasicMoments) {
  Histogram h;
  for (const std::uint64_t v : {1, 2, 3, 4, 5}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 5u);
}

TEST(Histogram, MedianOddAndEven) {
  Histogram odd;
  for (const std::uint64_t v : {1, 2, 3, 4, 5}) odd.add(v);
  EXPECT_EQ(odd.percentile(0.5), 3u);

  Histogram even;
  for (const std::uint64_t v : {1, 2, 3, 4}) even.add(v);
  EXPECT_EQ(even.percentile(0.5), 2u);  // smallest v covering half the mass
}

TEST(Histogram, PercentileEdges) {
  Histogram h;
  for (std::uint64_t v = 0; v < 100; ++v) h.add(v);
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(1.0), 99u);
  EXPECT_EQ(h.percentile(0.99), 98u);
}

TEST(Histogram, PercentileEmptyDefinedForAnyQuantile) {
  const Histogram h;
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.percentile(1.0), 0u);
  EXPECT_EQ(h.percentile(-2.0), 0u);
  EXPECT_EQ(h.percentile(7.0), 0u);
  EXPECT_EQ(h.percentile(std::numeric_limits<double>::quiet_NaN()), 0u);
}

TEST(Histogram, PercentileSingleSampleIsThatSample) {
  Histogram h;
  h.add(42);
  EXPECT_EQ(h.percentile(0.0), 42u);
  EXPECT_EQ(h.percentile(0.5), 42u);
  EXPECT_EQ(h.percentile(1.0), 42u);
}

TEST(Histogram, PercentileClampsOutOfRangeQuantiles) {
  Histogram h;
  for (const std::uint64_t v : {10, 20, 30}) h.add(v);
  // q <= 0 clamps to the smallest recorded value, q >= 1 to the largest.
  EXPECT_EQ(h.percentile(-0.5), 10u);
  EXPECT_EQ(h.percentile(1.5), 30u);
  EXPECT_EQ(h.percentile(-std::numeric_limits<double>::infinity()), 10u);
  EXPECT_EQ(h.percentile(std::numeric_limits<double>::infinity()), 30u);
}

TEST(Histogram, PercentileNanBehavesLikeZero) {
  Histogram h;
  for (const std::uint64_t v : {10, 20, 30}) h.add(v);
  // NaN must not reach std::clamp (unspecified) or the rank cast (UB).
  EXPECT_EQ(h.percentile(std::numeric_limits<double>::quiet_NaN()), 10u);
}

TEST(Histogram, OverflowRegionExact) {
  Histogram h(/*dense_limit=*/16);
  h.add(10);
  h.add(1000);
  h.add(1000000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), 1000000u);
  EXPECT_EQ(h.percentile(1.0), 1000000u);
  EXPECT_EQ(h.count_at(1000), 1u);
  EXPECT_EQ(h.count_at(999), 0u);
}

TEST(Histogram, PercentilesMatchSortedVector) {
  Rng rng(99);
  Histogram h(64);
  std::vector<std::uint64_t> vals;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_below(500);
    h.add(v);
    vals.push_back(v);
  }
  std::sort(vals.begin(), vals.end());
  for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99}) {
    std::size_t rank = static_cast<std::size_t>(q * vals.size());
    if (static_cast<double>(rank) < q * static_cast<double>(vals.size())) {
      ++rank;
    }
    if (rank == 0) rank = 1;
    EXPECT_EQ(h.percentile(q), vals[rank - 1]) << "q=" << q;
  }
}

TEST(Histogram, MergePreservesCountsAndShape) {
  Histogram a, b;
  for (std::uint64_t v = 0; v < 10; ++v) a.add(v);
  for (std::uint64_t v = 10; v < 20; ++v) b.add(v);
  a.merge(b);
  EXPECT_EQ(a.count(), 20u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 19u);
  EXPECT_DOUBLE_EQ(a.mean(), 9.5);
}

TEST(Histogram, AddCountEqualsRepeatedAdd) {
  Histogram repeated;
  for (int i = 0; i < 1000; ++i) repeated.add(7);
  for (int i = 0; i < 3; ++i) repeated.add(1000);
  Histogram batch;
  batch.add_count(7, 1000);
  batch.add_count(1000, 3);
  EXPECT_EQ(batch.count(), repeated.count());
  EXPECT_EQ(batch.count_at(7), repeated.count_at(7));
  EXPECT_EQ(batch.count_at(1000), repeated.count_at(1000));
  EXPECT_DOUBLE_EQ(batch.mean(), repeated.mean());
  EXPECT_EQ(batch.min(), repeated.min());
  EXPECT_EQ(batch.max(), repeated.max());
}

/// merge() must be bit-identical to replaying every one of the other
/// histogram's samples through add() — counts, moments, and percentiles.
TEST(Histogram, MergeBitIdenticalToSampleReplay) {
  Rng rng(7);
  Histogram a(64), b(64);
  std::vector<std::uint64_t> b_samples;
  for (int i = 0; i < 2000; ++i) a.add(rng.next_below(300));
  for (int i = 0; i < 2500; ++i) {
    // Mix of dense-region and deep-overflow values, with heavy repeats.
    const std::uint64_t v =
        (i % 5 == 0) ? 100000 + rng.next_below(4) : rng.next_below(200);
    b.add(v);
    b_samples.push_back(v);
  }

  Histogram merged = a;
  merged.merge(b);
  Histogram replayed = a;
  for (const auto v : b_samples) replayed.add(v);

  EXPECT_EQ(merged.count(), replayed.count());
  EXPECT_EQ(merged.min(), replayed.min());
  EXPECT_EQ(merged.max(), replayed.max());
  EXPECT_DOUBLE_EQ(merged.mean(), replayed.mean());
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(merged.percentile(q), replayed.percentile(q)) << "q=" << q;
  }
  for (std::uint64_t v = 0; v < 300; ++v) {
    ASSERT_EQ(merged.count_at(v), replayed.count_at(v)) << "v=" << v;
  }
  for (std::uint64_t v = 100000; v < 100004; ++v) {
    ASSERT_EQ(merged.count_at(v), replayed.count_at(v)) << "v=" << v;
  }
}

/// Values sitting exactly on the dense/overflow boundary must land in the
/// same region after a merge as after direct adds.
TEST(Histogram, MergeDenseOverflowBoundary) {
  Histogram a(16), b(16);
  b.add(15);  // last dense slot
  b.add(16);  // first overflow value
  b.add_count(17, 5);
  a.merge(b);
  EXPECT_EQ(a.count(), 7u);
  EXPECT_EQ(a.count_at(15), 1u);
  EXPECT_EQ(a.count_at(16), 1u);
  EXPECT_EQ(a.count_at(17), 5u);
  EXPECT_EQ(a.min(), 15u);
  EXPECT_EQ(a.max(), 17u);
}

/// Merging histograms with different dense limits re-buckets under the
/// destination's limit without losing any counts.
TEST(Histogram, MergeMismatchedDenseLimits) {
  Histogram wide(4096), narrow(8);
  // In `narrow`, 100 and 3000 live in the overflow map; in `wide` both fit
  // the dense region.
  narrow.add_count(3, 4);
  narrow.add_count(100, 2);
  narrow.add(3000);
  wide.add(50);
  wide.merge(narrow);
  EXPECT_EQ(wide.count(), 8u);
  EXPECT_EQ(wide.count_at(3), 4u);
  EXPECT_EQ(wide.count_at(50), 1u);
  EXPECT_EQ(wide.count_at(100), 2u);
  EXPECT_EQ(wide.count_at(3000), 1u);
  EXPECT_EQ(wide.percentile(0.5), 3u);
  EXPECT_EQ(wide.max(), 3000u);

  // And the reverse direction: dense-region values of `wide2` overflow in
  // `narrow2`.
  Histogram narrow2(8), wide2(4096);
  wide2.add_count(100, 3);
  narrow2.add(1);
  narrow2.merge(wide2);
  EXPECT_EQ(narrow2.count(), 4u);
  EXPECT_EQ(narrow2.count_at(100), 3u);
  EXPECT_EQ(narrow2.percentile(1.0), 100u);
}

TEST(Histogram, MergeWithEmptyAndSelf) {
  Histogram a, empty;
  a.add(5);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 5u);

  Histogram s(16);
  s.add(3);
  s.add(40);
  s.merge(s);  // self-merge doubles every bucket
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(s.count_at(3), 2u);
  EXPECT_EQ(s.count_at(40), 2u);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.add(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, SummaryMentionsKeyFields) {
  Histogram h;
  h.add(7);
  const auto s = h.summary();
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("p50=7"), std::string::npos);
}

}  // namespace
}  // namespace sctm
