file(REMOVE_RECURSE
  "CMakeFiles/test_noc.dir/noc/test_ideal_network.cpp.o"
  "CMakeFiles/test_noc.dir/noc/test_ideal_network.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/test_routing.cpp.o"
  "CMakeFiles/test_noc.dir/noc/test_routing.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/test_topology.cpp.o"
  "CMakeFiles/test_noc.dir/noc/test_topology.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/test_traffic.cpp.o"
  "CMakeFiles/test_noc.dir/noc/test_traffic.cpp.o.d"
  "test_noc"
  "test_noc.pdb"
  "test_noc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
