#include "core/explore.hpp"

#include <algorithm>

#include "common/parallel.hpp"

namespace sctm::core {

std::vector<ExploreResult> explore(const trace::Trace& trace,
                                   const std::vector<Candidate>& candidates,
                                   const ReplayConfig& config,
                                   unsigned threads) {
  std::vector<ExploreResult> out(candidates.size());
  parallel_for(
      candidates.size(),
      [&](std::size_t i) {
        const auto rep = run_replay(trace, candidates[i].spec, config);
        const auto h = rep.result.latency_histogram();
        out[i] = ExploreResult{candidates[i].name,
                               rep.result.runtime,
                               h.mean(),
                               h.percentile(0.99),
                               rep.result.iterations,
                               rep.wall_seconds};
      },
      threads);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.runtime != b.runtime) return a.runtime < b.runtime;
    return a.name < b.name;
  });
  return out;
}

}  // namespace sctm::core
