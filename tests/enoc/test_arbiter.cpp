#include "enoc/arbiter.hpp"

#include <gtest/gtest.h>

#include <map>

namespace sctm::enoc {
namespace {

std::vector<bool> bits(std::initializer_list<int> set, int width) {
  std::vector<bool> v(width, false);
  for (const int i : set) v[i] = true;
  return v;
}

TEST(RoundRobin, NoRequestsNoGrant) {
  RoundRobinArbiter a(4);
  EXPECT_EQ(a.grant(bits({}, 4)), -1);
}

TEST(RoundRobin, SingleRequesterWins) {
  RoundRobinArbiter a(4);
  EXPECT_EQ(a.grant(bits({2}, 4)), 2);
}

TEST(RoundRobin, RotatesAmongContenders) {
  RoundRobinArbiter a(3);
  const auto all = bits({0, 1, 2}, 3);
  EXPECT_EQ(a.grant(all), 0);
  EXPECT_EQ(a.grant(all), 1);
  EXPECT_EQ(a.grant(all), 2);
  EXPECT_EQ(a.grant(all), 0);
}

TEST(RoundRobin, SkipsIdleRequesters) {
  RoundRobinArbiter a(4);
  EXPECT_EQ(a.grant(bits({1, 3}, 4)), 1);
  EXPECT_EQ(a.grant(bits({1, 3}, 4)), 3);
  EXPECT_EQ(a.grant(bits({1, 3}, 4)), 1);
}

TEST(RoundRobin, FairUnderSaturation) {
  RoundRobinArbiter a(4);
  std::map<int, int> wins;
  const auto all = bits({0, 1, 2, 3}, 4);
  for (int i = 0; i < 400; ++i) wins[a.grant(all)]++;
  for (int i = 0; i < 4; ++i) EXPECT_EQ(wins[i], 100);
}

TEST(RoundRobin, ResetRestoresPriority) {
  RoundRobinArbiter a(4);
  (void)a.grant(bits({0, 1}, 4));
  a.reset();
  EXPECT_EQ(a.grant(bits({0, 1}, 4)), 0);
}

TEST(Matrix, SingleRequesterWins) {
  MatrixArbiter a(4);
  EXPECT_EQ(a.grant(bits({3}, 4)), 3);
}

TEST(Matrix, LeastRecentlyGrantedWins) {
  MatrixArbiter a(3);
  const auto all = bits({0, 1, 2}, 3);
  EXPECT_EQ(a.grant(all), 0);
  EXPECT_EQ(a.grant(all), 1);
  EXPECT_EQ(a.grant(all), 2);
  EXPECT_EQ(a.grant(all), 0);
}

TEST(Matrix, WinnerDropsBehindNewcomer) {
  MatrixArbiter a(3);
  EXPECT_EQ(a.grant(bits({0}, 3)), 0);
  // 0 just won; against 2 it should now lose.
  EXPECT_EQ(a.grant(bits({0, 2}, 3)), 2);
}

TEST(Matrix, FairUnderSaturation) {
  MatrixArbiter a(4);
  std::map<int, int> wins;
  const auto all = bits({0, 1, 2, 3}, 4);
  for (int i = 0; i < 400; ++i) wins[a.grant(all)]++;
  for (int i = 0; i < 4; ++i) EXPECT_EQ(wins[i], 100);
}

TEST(Matrix, NoRequestsNoGrant) {
  MatrixArbiter a(2);
  EXPECT_EQ(a.grant(bits({}, 2)), -1);
}

}  // namespace
}  // namespace sctm::enoc
