#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "noc/traffic.hpp"
#include "onoc/onoc_network.hpp"
#include "trace/capture.hpp"

namespace sctm::onoc {
namespace {

using noc::Message;
using noc::Topology;

Message make_msg(MsgId id, NodeId src, NodeId dst, std::uint32_t bytes) {
  Message m;
  m.id = id;
  m.src = src;
  m.dst = dst;
  m.size_bytes = bytes;
  m.cls = noc::MsgClass::kData;
  return m;
}

OnocParams pool_params(int channels) {
  OnocParams p;
  p.arbitration = Arbitration::kSharedPool;
  p.pool_channels = channels;
  return p;
}

TEST(SharedPool, RejectsEmptyPool) {
  Simulator sim;
  EXPECT_THROW(
      OnocNetwork(sim, "onoc", Topology::mesh(4, 4), pool_params(0)),
      std::invalid_argument);
}

TEST(SharedPool, SingleMessagePaysArbitrationRound) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  OnocNetwork net(sim, "onoc", t, pool_params(4));
  Message got;
  net.set_deliver_callback([&](const Message& m) { got = m; });
  net.inject(make_msg(1, 0, 15, 64));
  sim.run();
  // Half a token round (8 hops on 16 nodes) on top of zero-load.
  EXPECT_EQ(got.latency(), net.zero_load_latency(got) + 8);
}

TEST(SharedPool, ParallelismBoundedByPoolSize) {
  // Two channels, three concurrent large transfers between disjoint pairs:
  // exactly one must wait a full serialization behind the others.
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  OnocNetwork net(sim, "onoc", t, pool_params(2));
  std::vector<Message> got;
  net.set_deliver_callback([&](const Message& m) { got.push_back(m); });
  net.inject(make_msg(1, 0, 12, 640));
  net.inject(make_msg(2, 1, 13, 640));
  net.inject(make_msg(3, 2, 14, 640));
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  std::vector<Cycle> arrivals;
  for (const auto& m : got) arrivals.push_back(m.arrive_time);
  std::sort(arrivals.begin(), arrivals.end());
  const Cycle ser = net.params().ser_cycles(640);
  EXPECT_LT(arrivals[1], arrivals[0] + ser / 2);  // two run concurrently
  EXPECT_GE(arrivals[2], arrivals[0] + ser);      // the third queues
}

TEST(SharedPool, MoreChannelsMeanLowerLatencyUnderLoad) {
  auto mean_latency = [](int channels) {
    Simulator sim;
    const auto t = Topology::mesh(4, 4);
    OnocNetwork net(sim, "onoc", t, pool_params(channels));
    noc::TrafficGenerator::Params tp;
    tp.injection_rate = 0.1;
    tp.warmup = 300;
    tp.measure = 3000;
    tp.seed = 51;
    noc::TrafficGenerator gen(sim, "gen", net, t, tp);
    gen.run_to_completion();
    return gen.latency().mean();
  };
  EXPECT_GT(mean_latency(2), mean_latency(16));
}

TEST(SharedPool, LosslessUnderLoad) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  OnocNetwork net(sim, "onoc", t, pool_params(4));
  noc::TrafficGenerator::Params tp;
  tp.injection_rate = 0.15;
  tp.warmup = 200;
  tp.measure = 2000;
  tp.seed = 52;
  noc::TrafficGenerator gen(sim, "gen", net, t, tp);
  gen.run_to_completion();
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.injected_count(), net.delivered_count());
}

TEST(SharedPool, FixedPointBitExact) {
  using namespace core;
  fullsys::AppParams app;
  app.name = "fft";
  app.cores = 16;
  app.lines_per_core = 8;
  app.iterations = 1;
  NetSpec spec;
  spec.kind = NetKind::kOnocToken;  // placeholder, overridden below
  spec.onoc.arbitration = Arbitration::kSharedPool;
  spec.onoc.pool_channels = 4;
  // Drive through the factory path that honors spec.onoc as-is: token kind
  // overwrites arbitration, so build the network directly instead.
  auto factory = [&](Simulator& sim) -> std::unique_ptr<noc::Network> {
    return std::make_unique<OnocNetwork>(sim, "net", spec.topo, spec.onoc);
  };
  // Execution-driven capture over the same factory.
  Simulator sim;
  auto net = factory(sim);
  fullsys::CmpSystem cmp(sim, "cmp", *net, spec.topo, {},
                         fullsys::build_app(app));
  trace::TraceCapture capture(cmp, app.name, "shared-pool", 16);
  const Cycle rt = cmp.run_to_completion();
  const auto tr = std::move(capture).finalize(rt);

  const auto rep = replay(tr, factory, {});
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < tr.records.size(); ++i) {
    if (rep.inject_time[i] != tr.records[i].inject_time ||
        rep.arrive_time[i] != tr.records[i].arrive_time) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

}  // namespace
}  // namespace sctm::onoc
