#include "noc/traffic.hpp"

#include <bit>
#include <stdexcept>

namespace sctm::noc {

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniform: return "uniform";
    case TrafficPattern::kTranspose: return "transpose";
    case TrafficPattern::kBitComplement: return "bit-complement";
    case TrafficPattern::kBitReverse: return "bit-reverse";
    case TrafficPattern::kTornado: return "tornado";
    case TrafficPattern::kNeighbor: return "neighbor";
    case TrafficPattern::kHotspot: return "hotspot";
    case TrafficPattern::kShuffle: return "shuffle";
    case TrafficPattern::kBitRotate: return "bit-rotate";
  }
  return "?";
}

namespace {

NodeId uniform_dest(const Topology& topo, NodeId src, Rng& rng) {
  const int n = topo.node_count();
  if (n < 2) return src;
  NodeId dst = src;
  while (dst == src) {
    dst = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
  }
  return dst;
}

}  // namespace

NodeId pattern_destination(const Topology& topo, TrafficPattern p, NodeId src,
                           Rng& rng, NodeId hotspot_node,
                           double hotspot_fraction) {
  const int n = topo.node_count();
  NodeId dst = src;
  switch (p) {
    case TrafficPattern::kUniform:
      return uniform_dest(topo, src, rng);
    case TrafficPattern::kTranspose: {
      if (topo.kind() != Topology::Kind::kFile && topo.depth() == 1 &&
          topo.width() == topo.height()) {
        // Square 2D fabric: the classic coordinate transpose (legacy path,
        // outputs pinned by the traffic regression test).
        const Coord c = topo.coords(src);
        dst = topo.node_at({c.y, c.x, 0});
      } else {
        // Non-square, 3D or irregular: generalized transpose as a node-index
        // permutation — swap the high and low halves of the index bits. On a
        // square power-of-two fabric this *is* the coordinate transpose
        // (index = y<<k | x), and it stays a sensible long-haul permutation
        // when coordinates don't form a square.
        const int bits =
            ((std::bit_width(static_cast<unsigned>(n - 1)) + 1) / 2) * 2;
        const int half = bits / 2;
        const unsigned s = static_cast<unsigned>(src);
        const unsigned lo = s & ((1u << half) - 1u);
        dst = static_cast<NodeId>(((s >> half) | (lo << half)) %
                                  static_cast<unsigned>(n));
      }
      break;
    }
    case TrafficPattern::kBitComplement:
      dst = static_cast<NodeId>((n - 1) - src);
      break;
    case TrafficPattern::kBitReverse: {
      const int bits = std::bit_width(static_cast<unsigned>(n)) - 1;
      unsigned rev = 0;
      for (int b = 0; b < bits; ++b) {
        if (static_cast<unsigned>(src) & (1u << b)) rev |= 1u << (bits - 1 - b);
      }
      dst = static_cast<NodeId>(rev) % n;
      break;
    }
    case TrafficPattern::kTornado: {
      if (topo.kind() != Topology::Kind::kFile) {
        // Half-way shift in every lattice dimension (the 2D formula extended
        // by z; depth 1 leaves z untouched, so 2D outputs are unchanged).
        const Coord c = topo.coords(src);
        dst = topo.node_at({(c.x + topo.width() / 2) % topo.width(),
                            (c.y + topo.height() / 2) % topo.height(),
                            (c.z + topo.depth() / 2) % topo.depth()});
      } else {
        // Irregular fabrics have no dimensions; shift half-way around the
        // node-index space.
        dst = static_cast<NodeId>((src + n / 2) % n);
      }
      break;
    }
    case TrafficPattern::kNeighbor: {
      if (topo.kind() != Topology::Kind::kFile) {
        const Coord c = topo.coords(src);
        dst = topo.node_at({(c.x + 1) % topo.width(), c.y, c.z});
      } else {
        dst = static_cast<NodeId>((src + 1) % n);
      }
      break;
    }
    case TrafficPattern::kHotspot:
      if (rng.next_bool(hotspot_fraction) && hotspot_node != src) {
        dst = hotspot_node;
      } else {
        return uniform_dest(topo, src, rng);
      }
      break;
    case TrafficPattern::kShuffle: {
      const int bits = std::bit_width(static_cast<unsigned>(n)) - 1;
      const unsigned s = static_cast<unsigned>(src);
      const unsigned top = (s >> (bits - 1)) & 1u;
      dst = static_cast<NodeId>(((s << 1) | top) & ((1u << bits) - 1)) % n;
      break;
    }
    case TrafficPattern::kBitRotate: {
      const int bits = std::bit_width(static_cast<unsigned>(n)) - 1;
      const unsigned s = static_cast<unsigned>(src);
      const unsigned low = s & 1u;
      dst = static_cast<NodeId>((s >> 1) | (low << (bits - 1))) % n;
      break;
    }
  }
  if (dst == src) return uniform_dest(topo, src, rng);
  return dst;
}

TrafficGenerator::TrafficGenerator(Simulator& sim, std::string name,
                                   Network& net, const Topology& topo,
                                   const Params& params)
    : Component(sim, std::move(name)),
      net_(net),
      topo_(topo),
      params_(params),
      rng_(params.seed) {
  if (net_.node_count() != topo_.node_count()) {
    throw std::invalid_argument("TrafficGenerator: topology/network mismatch");
  }
  if (params_.injection_rate < 0.0 || params_.injection_rate > 1.0) {
    throw std::invalid_argument("TrafficGenerator: rate must be in [0,1]");
  }
}

void TrafficGenerator::start() {
  measure_start_ = sim().now() + params_.warmup;
  measure_end_ = measure_start_ + params_.measure;
  auto cb = [this](const Message& m) { on_deliver(m); };
  static_assert(Network::DeliverFn::fits_inline<decltype(cb)>(),
                "delivery callback must stay within the SBO budget");
  net_.set_deliver_callback(std::move(cb));
  for (NodeId node = 0; node < topo_.node_count(); ++node) {
    sim().schedule_in(0, [this, node] { tick(node); });
  }
}

void TrafficGenerator::tick(NodeId node) {
  const Cycle t = sim().now();
  if (t >= measure_end_) return;  // stop generating; deliveries still drain
  if (rng_.next_bool(params_.injection_rate)) {
    Message msg;
    msg.id = next_id_++;
    msg.src = node;
    msg.dst = pattern_destination(topo_, params_.pattern, node, rng_,
                                  params_.hotspot_node,
                                  params_.hotspot_fraction);
    msg.size_bytes = params_.packet_bytes;
    msg.cls = params_.cls;
    if (t >= measure_start_) ++offered_;
    net_.inject(msg);
  }
  sim().schedule_in(1, [this, node] { tick(node); });
}

void TrafficGenerator::on_deliver(const Message& msg) {
  // Latency statistics cover packets *injected* during the window (even if
  // they arrive during the drain); throughput counts packets *delivered*
  // during the window — the standard open-loop accepted-traffic metric,
  // which saturates while the latency sample keeps growing.
  if (msg.inject_time >= measure_start_ && msg.inject_time < measure_end_) {
    measured_latency_.add(msg.latency());
  }
  if (msg.arrive_time >= measure_start_ && msg.arrive_time < measure_end_) {
    ++measured_delivered_;
  }
}

std::uint64_t TrafficGenerator::run_to_completion() {
  start();
  std::uint64_t events = sim().run_until(measure_end_);
  // Drain: run until every in-flight message is delivered.
  while (!net_.idle() && !sim().stopped()) {
    if (!sim().step()) break;
    ++events;
  }
  return events;
}

double TrafficGenerator::throughput() const {
  const double cycles = static_cast<double>(params_.measure);
  const double nodes = static_cast<double>(topo_.node_count());
  return cycles > 0 ? static_cast<double>(measured_delivered_) /
                          (cycles * nodes)
                    : 0.0;
}

}  // namespace sctm::noc
