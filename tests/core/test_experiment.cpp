#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sctm::core {
namespace {

TEST(Experiment, NetKindParsing) {
  EXPECT_EQ(net_kind_from("ideal"), NetKind::kIdeal);
  EXPECT_EQ(net_kind_from("enoc"), NetKind::kEnoc);
  EXPECT_EQ(net_kind_from("onoc-token"), NetKind::kOnocToken);
  EXPECT_EQ(net_kind_from("onoc-setup"), NetKind::kOnocSetup);
  EXPECT_EQ(net_kind_from("onoc-swmr"), NetKind::kOnocSwmr);
  EXPECT_EQ(net_kind_from("hybrid"), NetKind::kHybrid);
  EXPECT_THROW(net_kind_from("carrier-pigeon"), std::invalid_argument);
}

TEST(Experiment, NetSpecFromConfigDefaults) {
  const auto cfg = Config::from_string("target.kind = onoc-swmr\n");
  const auto spec = netspec_from_config(cfg, "target");
  EXPECT_EQ(spec.kind, NetKind::kOnocSwmr);
  EXPECT_EQ(spec.topo.node_count(), 16);
}

TEST(Experiment, NetSpecHonorsMeshAndModuleParams) {
  const auto cfg = Config::from_string(
      "target.kind = enoc\n"
      "net.mesh_width = 8\n"
      "net.mesh_height = 8\n"
      "enoc.vcs_per_vnet = 4\n"
      "enoc.buffer_depth = 8\n"
      "onoc.wavelengths = 64\n");
  const auto spec = netspec_from_config(cfg, "target");
  EXPECT_EQ(spec.topo.node_count(), 64);
  EXPECT_EQ(spec.enoc.vcs_per_vnet, 4);
  EXPECT_EQ(spec.enoc.buffer_depth, 8);
  EXPECT_EQ(spec.onoc.wavelengths, 64);
}

TEST(Experiment, TopologyFromConfig) {
  const auto mesh3d = topology_from_config(Config::from_string(
      "net.topology = mesh3d\nnet.mesh_width = 4\nnet.mesh_height = 4\n"
      "net.mesh_depth = 2\n"));
  EXPECT_EQ(mesh3d.kind(), noc::Topology::Kind::kMesh3D);
  EXPECT_EQ(mesh3d.node_count(), 32);

  const auto torus = topology_from_config(Config::from_string(
      "net.topology = torus\nnet.mesh_width = 3\nnet.mesh_height = 3\n"));
  EXPECT_EQ(torus.kind(), noc::Topology::Kind::kTorus);

  const auto ring = topology_from_config(
      Config::from_string("net.topology = ring\nnet.ring_nodes = 6\n"));
  EXPECT_EQ(ring.kind(), noc::Topology::Kind::kRing);
  EXPECT_EQ(ring.node_count(), 6);

  // Defaults preserved: no net.topology key means the legacy 4x4 mesh.
  const auto legacy = topology_from_config(Config::from_string(""));
  EXPECT_EQ(legacy, noc::Topology::mesh(4, 4));
}

TEST(Experiment, TopologyFromConfigErrors) {
  // Unknown kinds and a missing file key error with the config line.
  try {
    (void)topology_from_config(
        Config::from_string("net.kind = enoc\nnet.topology = klein-bottle\n"));
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(
      (void)topology_from_config(Config::from_string("net.topology = file\n")),
      std::runtime_error);
}

TEST(Experiment, DefaultRoutingFollowsTopology) {
  // No enoc.routing key: the spec gets the fabric's natural algorithm (and
  // the hybrid's electrical plane inherits it); legacy mesh still gets XY.
  const auto spec3d = netspec_from_config(
      Config::from_string("target.kind = enoc\nnet.topology = torus3d\n"),
      "target");
  EXPECT_EQ(spec3d.enoc.routing, noc::RoutingAlgo::kXyz);
  EXPECT_EQ(spec3d.hybrid.electrical.routing, noc::RoutingAlgo::kXyz);
  const auto spec2d = netspec_from_config(
      Config::from_string("target.kind = enoc\n"), "target");
  EXPECT_EQ(spec2d.enoc.routing, noc::RoutingAlgo::kXY);
  // An explicit key always wins.
  const auto explicit_spec = netspec_from_config(
      Config::from_string("target.kind = enoc\nenoc.routing = yx\n"),
      "target");
  EXPECT_EQ(explicit_spec.enoc.routing, noc::RoutingAlgo::kYX);
}

TEST(Experiment, AppFromConfig) {
  const auto cfg = Config::from_string(
      "app.name = sort\napp.cores = 16\napp.lines_per_core = 8\n"
      "app.iterations = 3\napp.seed = 42\n");
  const auto app = app_from_config(cfg);
  EXPECT_EQ(app.name, "sort");
  EXPECT_EQ(app.iterations, 3);
  EXPECT_EQ(app.seed, 42u);
}

TEST(Experiment, ReplayFromConfig) {
  const auto cfg = Config::from_string(
      "replay.mode = naive\nreplay.window = 2\nreplay.max_iterations = 5\n");
  const auto rc = replay_from_config(cfg);
  EXPECT_EQ(rc.mode, ReplayMode::kNaive);
  EXPECT_EQ(rc.dependency_window, 2u);
  EXPECT_EQ(rc.max_iterations, 5);
  EXPECT_THROW(
      replay_from_config(Config::from_string("replay.mode = psychic\n")),
      std::invalid_argument);
}

TEST(Experiment, ExecModeProducesMetrics) {
  const auto cfg = Config::from_string(
      "experiment.mode = exec\napp.name = fft\napp.lines_per_core = 8\n"
      "app.iterations = 1\ntarget.kind = ideal\n");
  const auto t = run_experiment(cfg);
  EXPECT_GE(t.row_count(), 4u);
  EXPECT_NE(t.to_ascii().find("runtime"), std::string::npos);
}

TEST(Experiment, ReplayModeRunsPipeline) {
  const auto cfg = Config::from_string(
      "experiment.mode = replay\napp.name = jacobi\napp.lines_per_core = 8\n"
      "app.iterations = 1\ncapture.kind = ideal\ntarget.kind = onoc-token\n");
  const auto t = run_experiment(cfg);
  EXPECT_NE(t.to_ascii().find("iterations"), std::string::npos);
}

TEST(Experiment, AccuracyModeComparesModels) {
  const auto cfg = Config::from_string(
      "experiment.mode = accuracy\napp.name = fft\napp.lines_per_core = 8\n"
      "app.iterations = 1\ncapture.kind = ideal\ntarget.kind = ideal\n"
      "ideal.per_hop_latency = 1\n");
  const auto t = run_experiment(cfg);
  EXPECT_EQ(t.row_count(), 2u);  // naive + sctm rows
}

TEST(Experiment, UnknownModeThrows) {
  const auto cfg = Config::from_string("experiment.mode = vibes\n");
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(Experiment, ShippedConfigsParse) {
  // Locate the repo's configs/ from this source file's path (compilers pass
  // absolute paths under CMake), so the test still bites when ctest runs
  // from the build tree; fall back to a cwd-relative path otherwise.
  std::string root = __FILE__;
  const auto cut = root.rfind("tests/");
  root = cut == std::string::npos ? std::string() : root.substr(0, cut);
  for (const char* name :
       {"accuracy_fft_onoc.cfg", "exec_sort_hybrid.cfg", "replay_lu_swmr.cfg",
        "exec_jacobi_mesh3d.cfg", "replay_fft_file_topo.cfg"}) {
    const std::string path = root + "configs/" + name;
    SCOPED_TRACE(path);
    Config cfg;
    try {
      cfg = Config::from_file(path);
    } catch (const std::exception&) {
      // Neither resolution found the file; tolerate exotic build layouts.
      continue;
    }
    // Shipped configs reference topology files repo-root relative; anchor
    // them to the same root the config was found under.
    if (cfg.contains("net.topology.file")) {
      cfg.set("net.topology.file", root + cfg.get_string("net.topology.file"));
    }
    // Parses clean through the strict vocabulary checks (duplicate keys and
    // unknown fault.* keys hard-error in from_string/from_config) and runs.
    EXPECT_NO_THROW((void)run_experiment(cfg));
  }
}

}  // namespace
}  // namespace sctm::core
