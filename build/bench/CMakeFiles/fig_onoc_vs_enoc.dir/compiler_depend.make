# Empty compiler generated dependencies file for fig_onoc_vs_enoc.
# This may be replaced when dependencies are built.
