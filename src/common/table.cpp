#include "common/table.hpp"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sctm {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  assert(header_.empty() || row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << v;
  return ss.str();
}

std::string Table::fmt(std::uint64_t v) { return std::to_string(v); }
std::string Table::fmt(std::int64_t v) { return std::to_string(v); }

std::string Table::pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto line = [&](char fill, char sep) {
    std::string out = "+";
    for (const auto w : width) {
      out.append(w + 2, fill);
      out += sep;
    }
    out.back() = '+';
    out += '\n';
    return out;
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out += ' ';
      out += cell;
      out.append(width[i] - cell.size() + 1, ' ');
      out += '|';
    }
    out += '\n';
    return out;
  };

  std::string out = "== " + title_ + " ==\n";
  out += line('-', '+');
  if (!header_.empty()) {
    out += render_row(header_);
    out += line('=', '+');
  }
  for (const auto& r : rows_) out += render_row(r);
  out += line('-', '+');
  return out;
}

std::string Table::to_csv() const {
  std::ostringstream ss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      assert(row[i].find(',') == std::string::npos);
      if (i) ss << ',';
      ss << row[i];
    }
    ss << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return ss.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table: cannot write " + path);
  out << to_csv();
}

}  // namespace sctm
