file(REMOVE_RECURSE
  "CMakeFiles/onoc_vs_enoc.dir/onoc_vs_enoc.cpp.o"
  "CMakeFiles/onoc_vs_enoc.dir/onoc_vs_enoc.cpp.o.d"
  "onoc_vs_enoc"
  "onoc_vs_enoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onoc_vs_enoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
