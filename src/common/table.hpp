// Result-table formatting for the bench harness.
//
// Every bench binary emits the rows a paper table/figure would contain, in
// two renderings: an aligned ASCII table for the terminal and CSV for
// downstream plotting. Cells are strings; numeric helpers format with fixed
// precision so tables diff cleanly between runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sctm {

class Table {
 public:
  explicit Table(std::string title);

  /// Sets the column headers; must be called before add_row.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Row-building helpers.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt(std::uint64_t v);
  static std::string fmt(std::int64_t v);
  static std::string pct(double fraction, int precision = 1);

  std::size_t row_count() const { return rows_.size(); }
  const std::string& title() const { return title_; }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Aligned, boxed ASCII rendering.
  std::string to_ascii() const;

  /// RFC-4180-ish CSV (no quoting needed for our cells; commas are asserted
  /// absent in debug builds).
  std::string to_csv() const;

  /// Writes CSV to `path`; throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sctm
