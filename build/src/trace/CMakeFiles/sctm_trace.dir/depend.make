# Empty dependencies file for sctm_trace.
# This may be replaced when dependencies are built.
