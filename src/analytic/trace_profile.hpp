// Trace profiling: the one O(records) pass of the analytic fast path.
//
// Screening a design space analytically only pays off if the per-candidate
// cost is independent of trace length, so everything a latency estimator
// needs is reduced here, once, into a TraceProfile:
//
//  * offered-load matrices — messages and payload bytes per (source,
//    destination) pair, split by message class, so a candidate's route walk
//    can reconstruct per-link / per-channel arrival rates without touching
//    the records again;
//  * message-size moments — first and second moment per class (the M/G/1
//    waiting terms need E[S^2], i.e. the squared coefficient of variation)
//    plus the exact size histogram;
//  * dependency summary — fan-in, slack and root (dependency-free) counts;
//  * the critical-path skeleton — for every record, the dominant dependency
//    chain reaching it is summarized as a line `base + depth * L`, where
//    `base` is the chain's anchor inject time plus its accumulated slack and
//    `depth` is the number of network traversals on the chain. The replayed
//    completion time of the whole trace, on a network with mean latency L,
//    is approximated by the upper envelope of these lines — built once here
//    (convex hull over distinct depths), evaluated in O(log hull) per
//    candidate. On a single anchored chain over a fixed-latency network the
//    envelope is *exact*: it reproduces replay's t'(r) recursion.
//
// Scoring a candidate then costs O(nodes^2 * classes + log hull) — for a
// 4x4 mesh a few microseconds — versus a full replay pass at O(records).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/histogram.hpp"
#include "common/units.hpp"
#include "core/replay_input.hpp"
#include "noc/message.hpp"

namespace sctm::analytic {

/// Per-class payload moments (bytes).
struct ClassStats {
  std::uint64_t messages = 0;
  double sum_bytes = 0;
  double sum_bytes_sq = 0;

  double mean_bytes() const {
    return messages == 0 ? 0.0 : sum_bytes / static_cast<double>(messages);
  }
  /// Squared coefficient of variation of the payload size (0 when constant).
  double cv_sq() const;
};

struct TraceProfile {
  // -- shape ---------------------------------------------------------------
  std::int32_t nodes = 0;
  std::uint64_t records = 0;
  Cycle first_inject = 0;
  Cycle last_inject = 0;
  Cycle capture_runtime = 0;

  /// Capture-side injection span the offered-load rates are normalized by
  /// (>= 1). Rates are an approximation: replay on a slower candidate
  /// stretches the real injection process, so estimated utilizations are
  /// upper bounds near saturation — see DESIGN.md §12.
  Cycle span() const {
    return last_inject >= first_inject ? last_inject - first_inject + 1 : 1;
  }

  // -- offered load (nodes * nodes, row = source) --------------------------
  std::vector<std::uint64_t> pair_msgs;
  std::vector<double> pair_bytes;
  /// Per (pair, class): index = pair_index(s, d) * kMsgClassCount + cls.
  std::vector<std::uint64_t> pair_cls_msgs;
  std::vector<double> pair_cls_bytes;

  std::size_t pair_index(NodeId s, NodeId d) const {
    return static_cast<std::size_t>(s) * static_cast<std::size_t>(nodes) +
           static_cast<std::size_t>(d);
  }
  double pair_cls_mean_bytes(NodeId s, NodeId d, int c) const {
    const std::size_t i = pair_index(s, d) * noc::kMsgClassCount +
                          static_cast<std::size_t>(c);
    return pair_cls_msgs[i] == 0
               ? 0.0
               : pair_cls_bytes[i] / static_cast<double>(pair_cls_msgs[i]);
  }

  /// Nonzero (pair, class) buckets in pair-major order — the compact
  /// iteration surface of the estimators: scoring walks O(active flows)
  /// entries instead of the dense O(nodes^2 * classes) matrices.
  struct Flow {
    NodeId src = 0;
    NodeId dst = 0;
    std::int32_t cls = 0;
    double msgs = 0;
    double mean_bytes = 0;
  };
  std::vector<Flow> flows;

  // -- size distribution ---------------------------------------------------
  std::array<ClassStats, noc::kMsgClassCount> cls{};
  Histogram size_hist;

  // -- dependency structure ------------------------------------------------
  std::uint64_t dep_edges = 0;
  std::uint64_t roots = 0;  // dependency-free (anchored) records
  double mean_fanin = 0;    // dep edges per record
  double mean_slack = 0;    // mean slack over all dep edges (cycles)
  std::uint32_t critical_depth = 0;  // records on the longest chain

  // -- critical-path skeleton (upper envelope of base + depth * L) ---------
  struct ChainLine {
    double base = 0;   // anchor inject + accumulated slack (cycles)
    double depth = 0;  // network traversals on the chain (slope)
  };
  /// Envelope lines, ascending slope; breakpoints[i] is where line i+1
  /// overtakes line i.
  std::vector<ChainLine> hull;
  std::vector<double> hull_breaks;

  /// max over chains of (base + depth * mean_latency): the estimated
  /// completion (last arrival) of the trace on a network whose per-message
  /// latency averages `mean_latency` cycles. O(log hull).
  double hull_eval(double mean_latency) const;
};

/// Single streaming pass over a finalized ReplayTrace.
TraceProfile profile_trace(const core::ReplayTrace& rt);

}  // namespace sctm::analytic
