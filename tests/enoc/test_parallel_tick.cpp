// Sharded-tick determinism tests for the ENoC engine.
//
// The claim under test (see DESIGN.md §10): splitting one cycle's router
// work across a WorkerPool is *bit-identical* to serial ticking — same
// activity hash, same delivery (id, timestamp) sequence, same router-tick
// count, same kernel event count — because router ticks are pure per-router
// (side effects go to per-shard outboxes) and the drain applies them in
// ascending router-id order, the serial engine's exact visit order. These
// tests drive EnocNetwork directly with pools of several sizes, with the
// parallel grain forced to 0 so even small workloads actually shard, and
// include the drain-ordering regression for the activity scoreboard
// (clear masks before outbox entries, so drain-time activations survive).
#include "enoc/enoc_network.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/parallel.hpp"

namespace sctm::enoc {
namespace {

using noc::Message;
using noc::MsgClass;
using noc::Topology;

Message make_msg(MsgId id, NodeId src, NodeId dst, std::uint32_t bytes) {
  Message m;
  m.id = id;
  m.src = src;
  m.dst = dst;
  m.size_bytes = bytes;
  m.cls = MsgClass::kData;
  return m;
}

EnocParams small_params() {
  EnocParams p;
  p.vnets = 2;
  p.vcs_per_vnet = 2;
  p.buffer_depth = 4;
  return p;
}

struct WorkloadResult {
  std::uint64_t activity_hash = 0;
  std::uint64_t router_ticks = 0;
  std::uint64_t active_cycles = 0;
  std::uint64_t events = 0;
  std::vector<std::pair<MsgId, Cycle>> deliveries;

  bool operator==(const WorkloadResult&) const = default;
};

/// The quiescence suite's contended workload (staggered all-to-few bursts on
/// an 8x8 mesh), run with `threads` pool lanes. threads == 0 means no pool
/// at all (the plain serial engine); grain 0 forces sharding whenever a pool
/// is installed. `chain` adds a delivery-triggered same-cycle reply inject —
/// the drain-time activation path the clear-mask ordering rule exists for.
WorkloadResult run_workload(unsigned threads, bool exhaustive = false,
                            bool chain = false) {
  Simulator sim;
  const auto topo = Topology::mesh(8, 8);
  EnocNetwork net(sim, "enoc", topo, small_params());
  net.set_exhaustive_tick_for_test(exhaustive);
  net.set_parallel_grain(0);
  std::unique_ptr<WorkerPool> pool;
  if (threads > 0) {
    pool = std::make_unique<WorkerPool>(threads);
    sim.set_worker_pool(pool.get());
  }
  WorkloadResult out;
  MsgId next = 1;
  MsgId reply_next = 100000;  // distinct id space: one reply per original
  net.set_deliver_callback([&](const Message& m) {
    out.deliveries.emplace_back(m.id, sim.now());
    if (chain && m.id < 100000) {
      // Same-cycle reply from the delivering node: activates a router
      // *while the drain is running*, after its clear mask was recorded.
      net.inject(make_msg(reply_next++, m.dst, m.src, 32));
    }
  });
  for (int burst = 0; burst < 8; ++burst) {
    sim.schedule_in(static_cast<Cycle>(burst * 40), [&net, &next, burst] {
      for (int i = 0; i < 12; ++i) {
        const auto src = static_cast<NodeId>((burst * 13 + i * 5) % 64);
        auto dst = static_cast<NodeId>((i * 17 + burst * 7 + 3) % 64);
        if (dst == src) dst = (dst + 1) % 64;
        net.inject(make_msg(next++, src, dst, 64 + 32 * (i % 3)));
      }
    });
  }
  sim.run();
  out.activity_hash = net.activity_hash();
  out.router_ticks = net.router_ticks();
  out.active_cycles = net.active_cycles();
  out.events = sim.events_executed();
  return out;
}

TEST(ParallelTick, ShardedMatchesSerialBitExactly) {
  const WorkloadResult serial = run_workload(/*threads=*/0);
  ASSERT_EQ(serial.deliveries.size(), 96u);
  for (const unsigned threads : {1u, 2u, 3u, 4u, 8u}) {
    const WorkloadResult sharded = run_workload(threads);
    EXPECT_EQ(sharded, serial) << "threads=" << threads;
  }
}

TEST(ParallelTick, ShardedMatchesExhaustiveOracle) {
  // Transitivity check against the seed tick-everything policy: the sharded
  // engine must still produce the seed's datapath behaviour.
  const WorkloadResult oracle = run_workload(/*threads=*/0, /*exhaustive=*/true);
  const WorkloadResult sharded = run_workload(/*threads=*/4);
  EXPECT_EQ(sharded.activity_hash, oracle.activity_hash);
  EXPECT_EQ(sharded.deliveries, oracle.deliveries);
  // ...at strictly less router work (scoreboard still gates under shards).
  EXPECT_LT(sharded.router_ticks, oracle.router_ticks);
}

TEST(ParallelTick, DrainTimeActivationsSurviveScoreboardClears) {
  // Regression for the drain ordering rule: all shard clear-masks apply
  // before any outbox entry, so a router activated by a drain-time delivery
  // (ejection -> deliver -> same-cycle reply inject) keeps its active bit.
  // If the order were reversed, the reply's source router would be cleared
  // and its flits stranded — the run would either deadlock (caught by the
  // suite timeout) or lose deliveries.
  const WorkloadResult serial =
      run_workload(/*threads=*/0, /*exhaustive=*/false, /*chain=*/true);
  ASSERT_EQ(serial.deliveries.size(), 192u);  // 96 originals + 96 replies
  for (const unsigned threads : {2u, 4u}) {
    const WorkloadResult sharded =
        run_workload(threads, /*exhaustive=*/false, /*chain=*/true);
    EXPECT_EQ(sharded, serial) << "threads=" << threads;
  }
  // And the chained workload still matches the exhaustive oracle.
  const WorkloadResult oracle =
      run_workload(/*threads=*/0, /*exhaustive=*/true, /*chain=*/true);
  EXPECT_EQ(serial.activity_hash, oracle.activity_hash);
  EXPECT_EQ(serial.deliveries, oracle.deliveries);
}

TEST(ParallelTick, ReparameterizeRebuildsDatapathInPlace) {
  // In-place re-parameterization must behave exactly like a fresh network
  // constructed with the new parameters.
  Simulator sim;
  const auto topo = Topology::mesh(4, 4);
  EnocNetwork net(sim, "enoc", topo, small_params());
  std::vector<std::pair<MsgId, Cycle>> got;
  net.set_deliver_callback(
      [&](const Message& m) { got.emplace_back(m.id, sim.now()); });
  net.inject(make_msg(1, 0, 15, 96));
  net.inject(make_msg(2, 5, 10, 64));
  sim.run();
  ASSERT_EQ(got.size(), 2u);

  EnocParams wide = small_params();
  wide.vcs_per_vnet = 4;  // resizes every per-VC structure
  wide.buffer_depth = 2;
  wide.arbiter = ArbiterKind::kMatrix;
  sim.reset();
  net.reparameterize(wide);
  got.clear();
  net.inject(make_msg(1, 0, 15, 96));
  net.inject(make_msg(2, 5, 10, 64));
  sim.run();
  const auto reparam = got;
  const auto reparam_hash = net.activity_hash();

  Simulator fresh_sim;
  EnocNetwork fresh(fresh_sim, "enoc", topo, wide);
  got.clear();
  fresh.set_deliver_callback(
      [&](const Message& m) { got.emplace_back(m.id, fresh_sim.now()); });
  fresh.inject(make_msg(1, 0, 15, 96));
  fresh.inject(make_msg(2, 5, 10, 64));
  fresh_sim.run();

  EXPECT_EQ(reparam, got);
  EXPECT_EQ(reparam_hash, fresh.activity_hash());
}

}  // namespace
}  // namespace sctm::enoc
