#include "trace/capture.hpp"

#include <chrono>
#include <stdexcept>

namespace sctm::trace {

TraceCapture::TraceCapture(fullsys::CmpSystem& cmp, std::string app_name,
                           std::string network_desc, int nodes) {
  trace_.app = std::move(app_name);
  trace_.capture_network = std::move(network_desc);
  trace_.nodes = nodes;

  cmp.set_inject_observer([this](const fullsys::InjectionEvent& ev) {
    TraceRecord r;
    r.id = ev.msg.id;
    r.src = ev.msg.src;
    r.dst = ev.msg.dst;
    r.size_bytes = ev.msg.size_bytes;
    r.cls = ev.msg.cls;
    r.proto = static_cast<std::uint8_t>(ev.proto);
    r.inject_time = ev.msg.inject_time;
    r.deps.reserve(ev.deps.size());
    for (const auto& d : ev.deps) r.deps.push_back({d.parent, d.slack});
    index_.emplace(r.id, trace_.records.size());
    trace_.records.push_back(std::move(r));
  });
  cmp.set_deliver_observer([this](const noc::Message& m) {
    const auto it = index_.find(m.id);
    if (it == index_.end()) {
      throw std::logic_error("TraceCapture: delivery of unrecorded message");
    }
    trace_.records[it->second].arrive_time = m.arrive_time;
  });
}

Trace TraceCapture::finalize(Cycle capture_runtime, double* wall_seconds) && {
  const auto t0 = std::chrono::steady_clock::now();
  trace_.capture_runtime = capture_runtime;
  for (const auto& r : trace_.records) {
    if (r.arrive_time == kNoCycle) {
      throw std::logic_error("TraceCapture: message " + std::to_string(r.id) +
                             " never arrived");
    }
    for (const auto& d : r.deps) {
      const auto it = index_.find(d.parent);
      if (it == index_.end()) {
        throw std::logic_error("TraceCapture: dependency on unknown message");
      }
      const TraceRecord& p = trace_.records[it->second];
      // Capture-time invariant: slack was computed as inject - arrival, so
      // every dependency reconstructs the injection time exactly.
      if (p.arrive_time + d.slack != r.inject_time) {
        throw std::logic_error(
            "TraceCapture: inconsistent dependency slack for message " +
            std::to_string(r.id));
      }
    }
  }
  if (wall_seconds) {
    *wall_seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  }
  return std::move(trace_);
}

}  // namespace sctm::trace
