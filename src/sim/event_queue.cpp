#include "sim/event_queue.hpp"

#include <utility>

namespace sctm {

std::uint64_t EventQueue::push(Cycle t, EventFn fn, Band band) {
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{t, band, seq, std::move(fn)});
  return seq;
}

Cycle EventQueue::next_time() const {
  return heap_.empty() ? kNoCycle : heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  // priority_queue::top() is const; the move is safe because we pop
  // immediately after and never observe the moved-from entry.
  Entry& top = const_cast<Entry&>(heap_.top());
  Popped out{top.time, std::move(top.fn)};
  heap_.pop();
  return out;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace sctm
