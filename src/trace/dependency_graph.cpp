#include "trace/dependency_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace sctm::trace {

DependencyGraph::DependencyGraph(const Trace& trace) : trace_(trace) {
  const auto n = static_cast<std::uint32_t>(trace.records.size());
  index_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto& r = trace.records[i];
    if (!index_.emplace(r.id, i).second) {
      throw std::invalid_argument("DependencyGraph: duplicate message id");
    }
  }
  children_.resize(n);
  dep_count_.resize(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto& r = trace.records[i];
    dep_count_[i] = static_cast<std::uint32_t>(r.deps.size());
    if (r.deps.empty()) roots_.push_back(i);
    for (const auto& d : r.deps) {
      const auto it = index_.find(d.parent);
      if (it == index_.end()) {
        throw std::invalid_argument("DependencyGraph: unknown parent");
      }
      const std::uint32_t p = it->second;
      if (trace.records[p].id >= r.id) {
        throw std::invalid_argument(
            "DependencyGraph: dependency does not precede dependent");
      }
      if (trace.records[p].arrive_time + d.slack != r.inject_time) {
        throw std::invalid_argument(
            "DependencyGraph: slack inconsistent with capture times");
      }
      children_[p].push_back(i);
    }
  }
}

std::uint32_t DependencyGraph::index_of(MsgId id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) {
    throw std::out_of_range("DependencyGraph: unknown message id");
  }
  return it->second;
}

std::size_t DependencyGraph::critical_path_length() const {
  // Records are topologically ordered by id (validated above), so a single
  // forward sweep computes the longest chain.
  std::vector<std::uint32_t> depth(children_.size(), 1);
  std::size_t best = children_.empty() ? 0 : 1;
  for (std::uint32_t i = 0; i < children_.size(); ++i) {
    for (const std::uint32_t c : children_[i]) {
      depth[c] = std::max(depth[c], depth[i] + 1);
      best = std::max<std::size_t>(best, depth[c]);
    }
  }
  return best;
}

double DependencyGraph::mean_deps() const {
  if (dep_count_.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto d : dep_count_) total += d;
  return static_cast<double>(total) / static_cast<double>(dep_count_.size());
}

}  // namespace sctm::trace
