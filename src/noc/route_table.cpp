#include "noc/route_table.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace sctm::noc {

namespace {
constexpr int kUnreachable = std::numeric_limits<int>::max() / 2;
}  // namespace

RoutingTable::RoutingTable(const Topology& topo, RoutingAlgo algo)
    : topo_(topo), algo_(algo) {
  nodes_ = topo_.node_count();
  stride_ = topo_.radix();
  if (table_backed()) build_tables();
}

void RoutingTable::rebuild(const Topology& topo, RoutingAlgo algo) {
  topo_ = topo;
  algo_ = algo;
  nodes_ = topo_.node_count();
  stride_ = topo_.radix();
  free_hop_.clear();
  down_hop_.clear();
  du_.clear();
  up_.clear();
  if (table_backed()) build_tables();
}

void RoutingTable::build_tables() {
  const int n = nodes_;
  const int stride = stride_;

  // BFS spanning-tree levels from root 0; (level, id) is the total order.
  std::vector<int> level(static_cast<std::size_t>(n), -1);
  std::vector<NodeId> queue;
  queue.reserve(static_cast<std::size_t>(n));
  level[0] = 0;
  queue.push_back(0);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (int p = 0; p < stride; ++p) {
      const NodeId v = topo_.neighbor(u, p);
      if (v == kInvalidNode || level[static_cast<std::size_t>(v)] >= 0) {
        continue;
      }
      level[static_cast<std::size_t>(v)] =
          level[static_cast<std::size_t>(u)] + 1;
      queue.push_back(v);
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (level[static_cast<std::size_t>(v)] < 0) {
      throw std::invalid_argument(
          "RoutingTable: topology is disconnected (node " + std::to_string(v) +
          " unreachable from node 0)");
    }
  }
  const auto ord_less = [&](NodeId a, NodeId b) {
    const int la = level[static_cast<std::size_t>(a)];
    const int lb = level[static_cast<std::size_t>(b)];
    return la != lb ? la < lb : a < b;
  };

  up_.assign(static_cast<std::size_t>(n) * stride, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (int p = 0; p < stride; ++p) {
      const NodeId w = topo_.neighbor(v, p);
      if (w != kInvalidNode && ord_less(w, v)) {
        up_[static_cast<std::size_t>(v) * stride +
            static_cast<std::size_t>(p)] = 1;
      }
    }
  }

  // Ascending (level, id) order: up edges point to strictly earlier nodes,
  // so the du recurrence below is a single pass.
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), ord_less);

  const std::size_t cells = static_cast<std::size_t>(n) * n;
  free_hop_.assign(cells, -1);
  down_hop_.assign(cells, -1);
  du_.assign(cells, 0);
  std::vector<int> dd(static_cast<std::size_t>(n));
  std::vector<int> duv(static_cast<std::size_t>(n));

  for (NodeId d = 0; d < n; ++d) {
    // dd[v]: shortest down-only distance v -> d. Backward BFS from d over
    // reversed down edges: a hop u -> w is down iff ord(u) < ord(w), so from
    // w we relax neighbors earlier in the order.
    std::fill(dd.begin(), dd.end(), kUnreachable);
    dd[static_cast<std::size_t>(d)] = 0;
    queue.clear();
    queue.push_back(d);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId w = queue[head];
      for (int p = 0; p < stride; ++p) {
        const NodeId u = topo_.neighbor(w, p);
        if (u == kInvalidNode || !ord_less(u, w) ||
            dd[static_cast<std::size_t>(u)] != kUnreachable) {
          continue;
        }
        dd[static_cast<std::size_t>(u)] = dd[static_cast<std::size_t>(w)] + 1;
        queue.push_back(u);
      }
    }

    // Down-committed next hop: the down edge with the smallest dd, ties to
    // the smallest port index (determinism).
    for (NodeId v = 0; v < n; ++v) {
      if (v == d || dd[static_cast<std::size_t>(v)] == kUnreachable) continue;
      int best = kUnreachable;
      int best_port = -1;
      for (int p = 0; p < stride; ++p) {
        const NodeId w = topo_.neighbor(v, p);
        if (w == kInvalidNode ||
            up_[static_cast<std::size_t>(v) * stride +
                static_cast<std::size_t>(p)]) {
          continue;
        }
        if (dd[static_cast<std::size_t>(w)] < best) {
          best = dd[static_cast<std::size_t>(w)];
          best_port = p;
        }
      }
      down_hop_[static_cast<std::size_t>(v) * n +
                static_cast<std::size_t>(d)] =
          static_cast<std::int16_t>(best_port);
    }

    // du[v] = min(dd[v], 1 + min over up edges v -> u of du[u]): the
    // shortest legal up*/down* distance. Up edges lead to earlier nodes in
    // the order, so one ascending pass settles every entry.
    for (const NodeId v : order) {
      if (v == d) {
        duv[static_cast<std::size_t>(v)] = 0;
        continue;
      }
      int best = dd[static_cast<std::size_t>(v)];
      int best_port = -1;  // -1: descend (take down_hop)
      for (int p = 0; p < stride; ++p) {
        const NodeId u = topo_.neighbor(v, p);
        if (u == kInvalidNode ||
            !up_[static_cast<std::size_t>(v) * stride +
                 static_cast<std::size_t>(p)]) {
          continue;
        }
        const int cand = 1 + duv[static_cast<std::size_t>(u)];
        if (cand < best) {
          best = cand;
          best_port = p;
        }
      }
      if (best >= kUnreachable) {
        throw std::logic_error(
            "RoutingTable: no legal up*/down* route (escape ordering bug)");
      }
      duv[static_cast<std::size_t>(v)] = best;
      const std::size_t cell =
          static_cast<std::size_t>(v) * n + static_cast<std::size_t>(d);
      free_hop_[cell] = best_port >= 0
                            ? static_cast<std::int16_t>(best_port)
                            : down_hop_[cell];
      du_[cell] = static_cast<std::uint16_t>(best);
    }
  }
}

RoutePorts RoutingTable::route(NodeId src, NodeId cur, NodeId dst,
                               int in_port) const {
  if (!table_backed()) {
    return route_ports(topo_, algo_, src, cur, dst);
  }
  if (!topo_.valid_node(cur) || !topo_.valid_node(dst) ||
      !topo_.valid_node(src)) {
    throw std::logic_error("RoutingTable::route: invalid node");
  }
  RoutePorts out;
  if (cur == dst) return out;
  // Arriving over a down edge (the hop into us went down, i.e. our port back
  // to the sender goes up) commits the packet to the down phase.
  const bool committed =
      in_port >= 0 && in_port < stride_ &&
      up_[static_cast<std::size_t>(cur) * stride_ +
          static_cast<std::size_t>(in_port)] != 0;
  const std::size_t cell =
      static_cast<std::size_t>(cur) * nodes_ + static_cast<std::size_t>(dst);
  const std::int16_t hop = committed ? down_hop_[cell] : free_hop_[cell];
  if (hop < 0) {
    throw std::logic_error("RoutingTable::route: no admissible port");
  }
  out.push_back(hop);
  return out;
}

RouteAudit audit_routes(const RoutingTable& rt) {
  const Topology& topo = rt.topology();
  const int n = topo.node_count();
  const int stride = topo.radix();
  RouteAudit audit;
  audit.cdg_acyclic = true;

  // Channel-dependency adjacency over directed channels. The vertex is
  // (link, dateline subclass) — wrap topologies break their physical-link
  // cycles with the dateline VC discipline, so the deadlock-relevant graph
  // is over VC subclasses, tracked here with exactly the router's rules
  // (wrap link -> subclass 1, dimension change -> subclass 0, else inherit).
  const std::size_t nchan =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(stride) * 2;
  std::vector<std::vector<int>> cdg(nchan);

  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      int hops = 0;
      int prev_chan = -1;
      int prev_axis = -1;
      int subclass = 0;
      bool committed_seen = false;
      try {
        rt.walk(s, d, [&](NodeId node, int port) {
          ++hops;
          if (topo.wrap_link(node, port)) {
            subclass = 1;
          } else if (prev_axis >= 0 &&
                     prev_axis != topo.port_axis(node, port)) {
            subclass = 0;
          }
          const int chan =
              (static_cast<int>(node) * stride + port) * 2 + subclass;
          if (prev_chan >= 0) {
            auto& next = cdg[static_cast<std::size_t>(prev_chan)];
            if (std::find(next.begin(), next.end(), chan) == next.end()) {
              next.push_back(chan);
            }
          }
          if (rt.table_backed()) {
            // No down -> up turn: the one structural property the deadlock
            // argument rests on.
            const bool up = rt.up_edge(node, port);
            if (committed_seen && up) {
              throw std::logic_error("down->up turn in table route");
            }
            if (!up) committed_seen = true;
          }
          prev_chan = chan;
          prev_axis = topo.port_axis(node, port);
        });
      } catch (const std::exception& e) {
        audit.error = "route " + std::to_string(s) + " -> " +
                      std::to_string(d) + ": " + e.what();
        return audit;
      }
      const int want = rt.table_backed() ? rt.valid_distance(s, d)
                                         : topo.distance(s, d);
      if (hops != want) {
        audit.error = "route " + std::to_string(s) + " -> " +
                      std::to_string(d) + ": length " + std::to_string(hops) +
                      ", expected " + std::to_string(want);
        return audit;
      }
      ++audit.routes_checked;
      audit.max_hops = std::max(audit.max_hops, hops);
    }
  }

  // Cycle check (iterative DFS, colors: 0 unvisited, 1 on stack, 2 done).
  std::vector<std::uint8_t> color(nchan, 0);
  std::vector<std::pair<int, std::size_t>> stack;
  for (std::size_t start = 0; start < nchan; ++start) {
    if (color[start] != 0) continue;
    stack.push_back({static_cast<int>(start), 0});
    color[start] = 1;
    while (!stack.empty()) {
      auto& [link, next_i] = stack.back();
      const auto& next = cdg[static_cast<std::size_t>(link)];
      if (next_i >= next.size()) {
        color[static_cast<std::size_t>(link)] = 2;
        stack.pop_back();
        continue;
      }
      const int succ = next[next_i++];
      if (color[static_cast<std::size_t>(succ)] == 1) {
        audit.cdg_acyclic = false;
        audit.error = "channel dependency cycle through channel " +
                      std::to_string(succ);
        return audit;
      }
      if (color[static_cast<std::size_t>(succ)] == 0) {
        color[static_cast<std::size_t>(succ)] = 1;
        stack.push_back({succ, 0});
      }
    }
  }

  audit.ok = true;
  return audit;
}

}  // namespace sctm::noc
