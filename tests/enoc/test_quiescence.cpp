// Quiescence regression tests for the activity scoreboard.
//
// Two properties: (1) cost — on a sparse workload the kernel's work scales
// with *active* cycles and *active* routers, not with wall-clock cycles or
// node count; (2) determinism — draining the active set in ascending
// router-id order is bit-identical to the seed policy of ticking every
// router every cycle (same activity hash, same delivered timestamps, same
// per-cycle arbitration history).
#include "enoc/enoc_network.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace sctm::enoc {
namespace {

using noc::Message;
using noc::MsgClass;
using noc::Topology;

Message make_msg(MsgId id, NodeId src, NodeId dst, std::uint32_t bytes) {
  Message m;
  m.id = id;
  m.src = src;
  m.dst = dst;
  m.size_bytes = bytes;
  m.cls = MsgClass::kData;
  return m;
}

EnocParams small_params() {
  EnocParams p;
  p.vnets = 2;
  p.vcs_per_vnet = 2;
  p.buffer_depth = 4;
  return p;
}

TEST(Quiescence, SparseWorkloadCostScalesWithActiveCyclesNotWallClock) {
  // Two messages separated by a 100k-cycle idle gap on a 256-router mesh.
  Simulator sim;
  const auto topo = Topology::mesh(16, 16);
  EnocNetwork net(sim, "enoc", topo, small_params());
  std::vector<Cycle> delivered_at;
  net.set_deliver_callback(
      [&](const Message&) { delivered_at.push_back(sim.now()); });

  constexpr Cycle kGap = 100000;
  net.inject(make_msg(1, 0, 255, 64));
  sim.schedule_in(kGap, [&] { net.inject(make_msg(2, 255, 0, 64)); });
  sim.run();

  ASSERT_EQ(delivered_at.size(), 2u);
  EXPECT_GT(delivered_at[1], kGap);

  // The clock self-gates: the idle gap costs nothing. Each message is in
  // flight for ~hops * (pipeline + link) + serialization cycles, so the
  // active-cycle count is a few hundred — not 100k.
  EXPECT_LT(net.active_cycles(), 1000u);

  // The scoreboard gates router work: only routers currently holding flits
  // tick. A wormhole message occupies O(flits + pipeline depth) routers at
  // once, so total ticks are a small multiple of active cycles — nowhere
  // near node_count() per active cycle, let alone per wall cycle.
  EXPECT_LT(net.router_ticks(),
            net.active_cycles() * 32u);  // << 256 per active cycle
  EXPECT_LT(net.router_ticks(),
            static_cast<std::uint64_t>(net.node_count()) *
                net.active_cycles() / 4u);

  // Event count likewise tracks activity (flit hops + credits + per-cycle
  // ticks while running), not the wall-clock span.
  EXPECT_LT(sim.events_executed(), 20000u);
}

struct WorkloadResult {
  std::uint64_t activity_hash = 0;
  std::uint64_t router_ticks = 0;
  std::uint64_t events = 0;
  std::vector<std::pair<MsgId, Cycle>> deliveries;
};

/// A contended deterministic workload: staggered all-to-few bursts on an
/// 8x8 mesh, enough overlap to exercise credit stalls, VC contention and
/// multi-flit wormhole interleaving.
WorkloadResult run_workload(bool exhaustive) {
  Simulator sim;
  const auto topo = Topology::mesh(8, 8);
  EnocNetwork net(sim, "enoc", topo, small_params());
  net.set_exhaustive_tick_for_test(exhaustive);
  WorkloadResult out;
  net.set_deliver_callback([&](const Message& m) {
    out.deliveries.emplace_back(m.id, sim.now());
  });
  MsgId next = 1;
  for (int burst = 0; burst < 8; ++burst) {
    sim.schedule_in(static_cast<Cycle>(burst * 40), [&net, &next, burst] {
      for (int i = 0; i < 12; ++i) {
        const auto src = static_cast<NodeId>((burst * 13 + i * 5) % 64);
        auto dst = static_cast<NodeId>((i * 17 + burst * 7 + 3) % 64);
        if (dst == src) dst = (dst + 1) % 64;
        net.inject(make_msg(next++, src, dst, 64 + 32 * (i % 3)));
      }
    });
  }
  sim.run();
  out.activity_hash = net.activity_hash();
  out.router_ticks = net.router_ticks();
  out.events = sim.events_executed();
  return out;
}

TEST(Quiescence, ScoreboardIsBitIdenticalToExhaustiveTicking) {
  const WorkloadResult sb = run_workload(/*exhaustive=*/false);
  const WorkloadResult ex = run_workload(/*exhaustive=*/true);

  // Same flits moved through the same ports on the same cycles: the
  // order-sensitive activity hash and every delivery (id, timestamp) match
  // the seed scheduling policy exactly.
  ASSERT_EQ(sb.deliveries.size(), 96u);
  EXPECT_EQ(sb.activity_hash, ex.activity_hash);
  EXPECT_EQ(sb.deliveries, ex.deliveries);

  // ...while doing strictly less router work.
  EXPECT_LT(sb.router_ticks, ex.router_ticks);
}

TEST(Quiescence, ScoreboardRunIsSelfDeterministic) {
  const WorkloadResult a = run_workload(/*exhaustive=*/false);
  const WorkloadResult b = run_workload(/*exhaustive=*/false);
  EXPECT_EQ(a.activity_hash, b.activity_hash);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.router_ticks, b.router_ticks);
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
}  // namespace sctm::enoc
