// Base class for simulated hardware blocks.
//
// A Component owns a name (used as a stat prefix) and a reference to the
// kernel. Subclasses schedule their own events; there is no global tick
// broadcast — idle components cost nothing, which is what lets trace replay
// run orders of magnitude faster than execution-driven mode.
#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "sim/simulator.hpp"

namespace sctm {

class Component {
 public:
  Component(Simulator& sim, std::string name)
      : sim_(sim), name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  const std::string& name() const { return name_; }
  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }
  Cycle now() const { return sim_.now(); }

 protected:
  /// Counter/accumulator under this component's prefix ("<name>.<stat>").
  std::uint64_t& counter(std::string_view stat) {
    return sim_.stats().counter(name_ + "." + std::string(stat));
  }
  Accumulator& accumulator(std::string_view stat) {
    return sim_.stats().accumulator(name_ + "." + std::string(stat));
  }

 private:
  Simulator& sim_;
  std::string name_;
};

}  // namespace sctm
