// Trace serialization: the legacy v1 monolith, format dispatch to the
// chunked v2 container (src/tracestore), and a human-readable text dump.
//
// v1 binary layout (little-endian, fixed-width — frozen forever; files
// written by old builds must stay readable bit-for-bit):
//
//   magic "SCTMTRC1" (8 bytes)
//   u32 app_len, app bytes
//   u32 net_len, net bytes
//   i32 nodes, u64 capture_runtime, u64 seed, u64 record_count
//   per record:
//     u64 id, i32 src, i32 dst, u32 size, u8 cls, u8 proto,
//     u64 inject, u64 arrive, u16 dep_count, dep_count x (u64 parent,
//     u64 slack)
//
// The v2 container ("SCTMTRC2") is chunked, delta-compressed, and
// checksummed; see tracestore/format.hpp. read_binary / read_binary_file
// accept either format transparently (they sniff the magic); the write side
// is explicit: write_binary* always emits v1, write_file takes a format.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/record.hpp"

namespace sctm::trace {

enum class TraceFormat {
  kV1,  // legacy monolith (SCTMTRC1)
  kV2,  // chunked container (SCTMTRC2)
};

const char* to_string(TraceFormat f);

/// Always emits the legacy v1 layout.
void write_binary(const Trace& trace, std::ostream& out);

/// Reads either format (dispatches on the magic). Fails loudly: any
/// truncation, trailing garbage, or implausible length/count throws
/// std::runtime_error naming the byte offset — a Trace is never returned
/// partially filled.
Trace read_binary(std::istream& in);

void write_binary_file(const Trace& trace, const std::string& path);
Trace read_binary_file(const std::string& path);

/// Writes `trace` to `path` in the requested container format.
void write_file(const Trace& trace, const std::string& path, TraceFormat f);

/// Sniffs the on-disk format of `path`; throws std::runtime_error when the
/// file is unreadable or starts with neither magic.
TraceFormat sniff_format(const std::string& path);

/// One line per record: debugging/diffing aid, not meant to be re-parsed.
/// kNoCycle timestamps print symbolically as "none", never as a raw u64.
std::string to_text(const Trace& trace);

}  // namespace sctm::trace
