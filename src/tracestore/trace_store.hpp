// The v2 trace container: streaming writer, seeking/streaming reader, and
// whole-file helpers. See format.hpp for the byte layout and DESIGN.md §8
// for the rationale and compatibility policy.
//
// TraceWriter appends records with bounded memory (one encoded chunk plus
// the growing 40-byte-per-chunk index), so a capture farm can stream a
// multi-gigabyte trace to disk without ever materializing it. TraceReader
// parses the header/index/footer eagerly (validating their checksums) and
// then serves chunks on demand: whole-trace loads can decode chunks in
// parallel (common/parallel.hpp — chunks are independent), and ChunkCursor
// iterates chunk-at-a-time with an optional background prefetch-decode
// thread so replay ingestion overlaps decode with simulation setup.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "trace/record.hpp"
#include "tracestore/chunk_codec.hpp"
#include "tracestore/format.hpp"

namespace sctm::tracestore {

/// Container error with an optional offending chunk index (-1 when the
/// corruption is in the header, index, or footer).
class TraceStoreError : public std::runtime_error {
 public:
  TraceStoreError(std::string what, std::int64_t chunk = -1)
      : std::runtime_error(std::move(what)), chunk_(chunk) {}
  /// Offending chunk, or -1 for header/index/footer damage.
  std::int64_t chunk() const { return chunk_; }

 private:
  std::int64_t chunk_;
};

/// Trace provenance carried by the container header (everything the v1
/// monolith stored, minus the records).
struct TraceMeta {
  std::string app;
  std::string capture_network;
  std::int32_t nodes = 0;
  Cycle capture_runtime = 0;
  std::uint64_t seed = 0;
};

/// One chunk as described by the (crc-protected) index.
struct ChunkInfo {
  std::uint64_t file_offset = 0;  // of the chunk header (its crc32 field)
  std::uint32_t payload_len = 0;
  std::uint32_t record_count = 0;
  std::uint64_t first_record = 0;
  Cycle min_cycle = kNoCycle;  // smallest inject_time in the chunk
  Cycle max_cycle = kNoCycle;  // largest arrive_time in the chunk
};

// ---------------------------------------------------------------------------
// Byte sources: random access over a file or a memory span.

class ByteSource {
 public:
  virtual ~ByteSource() = default;
  virtual std::uint64_t size() const = 0;
  /// Reads exactly [off, off+n); throws TraceStoreError on a short read.
  /// Implementations are safe to call from one thread at a time; FileSource
  /// additionally serializes internally so parallel chunk decode can share
  /// one source.
  virtual void read_at(std::uint64_t off, void* dst, std::size_t n) = 0;
};

/// Opens `path` for random access (throws TraceStoreError when unreadable).
std::unique_ptr<ByteSource> open_file_source(const std::string& path);

/// Wraps caller-owned bytes (the caller keeps them alive).
std::unique_ptr<ByteSource> memory_source(const char* data, std::size_t len);

// ---------------------------------------------------------------------------
// Writer

class TraceWriter {
 public:
  /// Starts a container on `out` (header is written immediately). The
  /// stream must remain valid until finish().
  TraceWriter(std::ostream& out, TraceMeta meta,
              std::uint32_t chunk_records = kDefaultChunkRecords);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const trace::TraceRecord& r);

  /// Flushes the pending chunk and writes the index + footer. Must be
  /// called exactly once; append() is invalid afterwards.
  void finish();

  std::uint64_t records_written() const { return records_; }
  /// Content hash accumulated so far (final once finish() was called).
  std::uint64_t content_hash() const { return hash_.value(); }

 private:
  void flush_chunk();

  std::ostream& out_;
  std::uint32_t chunk_records_;
  ChunkEncoder encoder_;
  std::vector<ChunkInfo> chunks_;
  std::uint64_t offset_ = 0;  // bytes written so far
  std::uint64_t records_ = 0;
  std::uint32_t in_chunk_ = 0;
  Cycle chunk_min_ = kNoCycle;
  Cycle chunk_max_ = kNoCycle;
  Fnv1a64 hash_;
  bool finished_ = false;
};

/// Serializes a whole in-memory trace as v2.
void write_v2(const trace::Trace& t, std::ostream& out,
              std::uint32_t chunk_records = kDefaultChunkRecords);
void write_v2_file(const trace::Trace& t, const std::string& path,
                   std::uint32_t chunk_records = kDefaultChunkRecords);

/// Content hash of a trace independent of container format: FNV-1a/64 over
/// the canonical little-endian field stream (meta, then every record in v1
/// field order). A v1 file and its v2 conversion hash identically.
std::uint64_t content_hash(const trace::Trace& t);

/// Incremental pieces of content_hash(): fold the meta first, then every
/// record in id order. Streaming consumers (core::ReplayTrace) use these to
/// compute the canonical identity without materializing a trace::Trace.
void hash_meta(Fnv1a64& h, const std::string& app, const std::string& net,
               std::int32_t nodes, Cycle runtime, std::uint64_t seed);
void hash_record(Fnv1a64& h, const trace::TraceRecord& r);

// ---------------------------------------------------------------------------
// Reader

class TraceReader {
 public:
  /// Parses and validates header, index, and footer (checksums included);
  /// throws TraceStoreError on any inconsistency.
  explicit TraceReader(std::unique_ptr<ByteSource> source);

  static TraceReader open_file(const std::string& path) {
    return TraceReader(open_file_source(path));
  }

  const TraceMeta& meta() const { return meta_; }
  std::uint64_t record_count() const { return record_count_; }
  std::uint64_t stored_content_hash() const { return content_hash_; }
  std::uint32_t chunk_target() const { return chunk_target_; }
  std::uint64_t file_bytes() const { return source_->size(); }

  std::size_t chunk_count() const { return chunks_.size(); }
  const ChunkInfo& chunk_info(std::size_t i) const { return chunks_[i]; }

  /// Reads, CRC-checks, and decodes chunk `i`, *appending* to `out`.
  /// Throws TraceStoreError carrying `i` on corruption.
  void read_chunk(std::size_t i, std::vector<trace::TraceRecord>& out) const;

  /// Decodes the whole container into a Trace. With `parallel`, chunks are
  /// decoded concurrently via parallel_for (deterministic: each chunk lands
  /// at its indexed position).
  trace::Trace read_all(bool parallel = true) const;

 private:
  friend class ChunkCursor;
  void read_payload(std::size_t i, std::vector<char>& buf) const;

  std::unique_ptr<ByteSource> source_;
  TraceMeta meta_;
  std::vector<ChunkInfo> chunks_;
  std::uint64_t record_count_ = 0;
  std::uint64_t content_hash_ = 0;
  std::uint32_t chunk_target_ = 0;
};

/// Sequential chunk iteration, optionally with a background prefetch-decode
/// thread (one chunk of lookahead): while the consumer processes chunk i,
/// the worker reads+decodes chunk i+1. The cursor is the sole user of the
/// reader while iterating.
class ChunkCursor {
 public:
  ChunkCursor(const TraceReader& reader, bool prefetch);
  ~ChunkCursor();

  ChunkCursor(const ChunkCursor&) = delete;
  ChunkCursor& operator=(const ChunkCursor&) = delete;

  /// Swaps the next decoded chunk into `out` (contents replaced). Returns
  /// false at end. Rethrows any decode error (on the calling thread even
  /// when prefetching).
  bool next(std::vector<trace::TraceRecord>& out);

 private:
  struct Prefetcher;
  const TraceReader& reader_;
  std::size_t next_chunk_ = 0;
  std::unique_ptr<Prefetcher> prefetcher_;
};

// ---------------------------------------------------------------------------
// Whole-file helpers

/// True when the first 8 bytes of `data` are the v2 magic.
bool is_v2_magic(const char* data, std::size_t len);

/// Outcome of an integrity scan.
struct VerifyReport {
  bool ok = false;
  std::string error;        // empty when ok
  std::int64_t bad_chunk = -1;  // offending chunk, -1 = header/index/footer
  std::uint64_t records = 0;
  std::uint64_t chunks = 0;
  bool hash_checked = false;  // content hash recomputed and compared
};

/// Full integrity scan of a v2 file: header/index/footer checksums, every
/// chunk CRC + decode, and (with `deep`) the content hash against the
/// footer. Never throws on corruption — it reports.
VerifyReport verify_v2_file(const std::string& path, bool deep = true);

}  // namespace sctm::tracestore
