#include "onoc/token.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace sctm::onoc {
namespace {

TEST(TokenRing, GrantImmediateWhenTokenAtRequester) {
  TokenRing ring(8, 1);
  // Token starts at node 0.
  EXPECT_EQ(ring.acquire(0, 0, 10), 0u);
}

TEST(TokenRing, WaitsForTokenToTravel) {
  TokenRing ring(8, 1);
  // Token at 0, requester at 5 -> 5 hops.
  EXPECT_EQ(ring.acquire(5, 0, 10), 5u);
}

TEST(TokenRing, HopLatencyScalesWait) {
  TokenRing ring(8, 4);
  EXPECT_EQ(ring.acquire(5, 0, 10), 20u);
}

TEST(TokenRing, ChannelHoldDelaysNextGrant) {
  TokenRing ring(8, 1);
  const Cycle g1 = ring.acquire(0, 0, 100);  // holds [0, 100)
  EXPECT_EQ(g1, 0u);
  // Node 1 requests at t=10: token frees at 100 at pos 0... then 1 hop.
  EXPECT_EQ(ring.acquire(1, 10, 5), 101u);
}

TEST(TokenRing, TokenRotatesWhileIdle) {
  TokenRing ring(8, 1);
  (void)ring.acquire(0, 0, 4);  // free at 4, pos 0
  // At t=10 the token has idled 6 cycles -> position 6.
  EXPECT_EQ(ring.position_at(10), 6);
  // Requester 6 at t=10 gets it instantly.
  EXPECT_EQ(ring.acquire(6, 10, 1), 10u);
}

TEST(TokenRing, WrapAroundDistance) {
  TokenRing ring(8, 1);
  (void)ring.acquire(5, 0, 1);  // grant at 5, free at 6, pos 5
  // Node 3 at t=6: distance (3-5) mod 8 = 6.
  EXPECT_EQ(ring.acquire(3, 6, 1), 12u);
}

TEST(TokenRing, SequentialRequestsSerialize) {
  TokenRing ring(4, 1);
  const Cycle g1 = ring.acquire(1, 0, 10);
  const Cycle g2 = ring.acquire(2, 0, 10);
  const Cycle g3 = ring.acquire(3, 0, 10);
  EXPECT_EQ(g1, 1u);
  EXPECT_EQ(g2, g1 + 10 + 1);  // one hop 1->2 after hold
  EXPECT_EQ(g3, g2 + 10 + 1);
  EXPECT_EQ(ring.grants(), 3u);
}

TEST(TokenRing, OutOfOrderCallThrows) {
  TokenRing ring(4, 1);
  (void)ring.acquire(1, 10, 1);
  EXPECT_THROW(ring.acquire(2, 5, 1), std::logic_error);
}

TEST(TokenRing, InvalidArgsThrow) {
  EXPECT_THROW(TokenRing(0, 1), std::invalid_argument);
  EXPECT_THROW(TokenRing(4, 0), std::invalid_argument);
  TokenRing ring(4, 1);
  EXPECT_THROW(ring.acquire(4, 0, 1), std::invalid_argument);
  EXPECT_THROW(ring.acquire(-1, 0, 1), std::invalid_argument);
}

TEST(TokenRing, GrantNeverBeforeRequest) {
  TokenRing ring(16, 2);
  Cycle t = 0;
  for (int i = 0; i < 100; ++i) {
    const NodeId s = (i * 7) % 16;
    const Cycle g = ring.acquire(s, t, 3);
    EXPECT_GE(g, t);
    t += 5;
  }
}

// --- Property tests --------------------------------------------------------

// Naive O(n)-scan reference for TokenRing::acquire: instead of the analytic
// position/distance arithmetic, step the idle token one hop at a time from
// the channel-free instant until it reaches the requester. Any divergence
// between the closed form and this literal walk is a modelling bug.
struct NaiveRing {
  int nodes;
  Cycle hop;
  NodeId pos = 0;
  Cycle free_at = 0;

  Cycle acquire(NodeId s, Cycle t, Cycle hold) {
    const Cycle t0 = t > free_at ? t : free_at;
    // Walk the idle rotation up to t0 (whole hops only)...
    Cycle clock = free_at;
    NodeId p = pos;
    while (clock + hop <= t0) {
      clock += hop;
      p = static_cast<NodeId>((p + 1) % nodes);
    }
    // ...then keep walking until the token is at the requester.
    Cycle grant = t0;
    while (p != s) {
      grant += hop;
      p = static_cast<NodeId>((p + 1) % nodes);
    }
    pos = s;
    free_at = grant + hold;
    return grant;
  }
};

/// One randomized acquire request: requester, non-decreasing time, hold.
struct Req {
  NodeId s;
  Cycle t;
  Cycle hold;
};

std::vector<Req> random_sequence(Rng& rng, int nodes, int len) {
  std::vector<Req> seq;
  seq.reserve(static_cast<std::size_t>(len));
  Cycle t = 0;
  for (int i = 0; i < len; ++i) {
    t += static_cast<Cycle>(rng.next_below(9));  // gaps of 0..8 (repeats too)
    seq.push_back({static_cast<NodeId>(rng.next_below(
                       static_cast<std::uint64_t>(nodes))),
                   t, static_cast<Cycle>(rng.next_range(1, 12))});
  }
  return seq;
}

// Differential property: for randomized request sequences across ring sizes
// and hop latencies, the analytic acquire must grant exactly what the naive
// token-walk reference grants, request by request.
TEST(TokenRingProperty, RandomizedSequencesMatchNaiveReference) {
  Rng rng(0x70c37);
  for (const int nodes : {1, 2, 3, 8, 16, 61}) {
    for (const Cycle hop : {Cycle{1}, Cycle{2}, Cycle{7}}) {
      TokenRing ring(nodes, hop);
      NaiveRing naive{nodes, hop};
      const auto seq = random_sequence(rng, nodes, 300);
      for (std::size_t i = 0; i < seq.size(); ++i) {
        const Cycle got = ring.acquire(seq[i].s, seq[i].t, seq[i].hold);
        const Cycle want = naive.acquire(seq[i].s, seq[i].t, seq[i].hold);
        ASSERT_EQ(got, want) << "nodes=" << nodes << " hop=" << hop
                             << " req=" << i << " s=" << seq[i].s
                             << " t=" << seq[i].t << " hold=" << seq[i].hold;
        ASSERT_EQ(ring.free_at(), naive.free_at) << "req " << i;
      }
    }
  }
}

// Session-reset property: replaying any request sequence after reset() must
// grant bit-identically to both the first run and a freshly constructed
// ring — reset() is exactly the constructed state for the same (nodes, hop).
TEST(TokenRingProperty, ResetReplayIsBitIdenticalToFreshRing) {
  Rng rng(0x53537);
  for (int trial = 0; trial < 20; ++trial) {
    const int nodes = static_cast<int>(rng.next_range(1, 24));
    const Cycle hop = static_cast<Cycle>(rng.next_range(1, 5));
    const auto seq = random_sequence(rng, nodes, 200);

    TokenRing ring(nodes, hop);
    std::vector<Cycle> first;
    first.reserve(seq.size());
    for (const Req& r : seq) first.push_back(ring.acquire(r.s, r.t, r.hold));

    ring.reset();
    TokenRing fresh(nodes, hop);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      const Req& r = seq[i];
      const Cycle replayed = ring.acquire(r.s, r.t, r.hold);
      ASSERT_EQ(replayed, first[i]) << "trial " << trial << " req " << i;
      ASSERT_EQ(replayed, fresh.acquire(r.s, r.t, r.hold))
          << "trial " << trial << " req " << i;
      ASSERT_EQ(ring.free_at(), fresh.free_at()) << "trial " << trial;
    }
    EXPECT_EQ(ring.grants(), fresh.grants());
    EXPECT_EQ(ring.position_at(seq.back().t + 1000),
              fresh.position_at(seq.back().t + 1000));
  }
}

}  // namespace
}  // namespace sctm::onoc
