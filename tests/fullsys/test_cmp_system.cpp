#include "fullsys/cmp_system.hpp"

#include <gtest/gtest.h>

#include "enoc/enoc_network.hpp"
#include "noc/network.hpp"

namespace sctm::fullsys {
namespace {

using noc::Topology;

FullSysParams tiny_caches() {
  FullSysParams p;
  p.l1_sets = 8;  // tiny L1 so misses and evictions actually happen
  p.l1_ways = 2;
  p.l2_sets = 32;
  p.l2_ways = 4;
  return p;
}

/// Hand-built op stream helpers.
std::vector<Op> ops(std::initializer_list<Op> list) { return list; }
Op ld(std::uint64_t line) { return {OpKind::kLoad, line}; }
Op st(std::uint64_t line) { return {OpKind::kStore, line}; }
Op comp(std::uint64_t c) { return {OpKind::kCompute, c}; }
Op bar() { return {OpKind::kBarrier, 0}; }
Op done() { return {OpKind::kDone, 0}; }

std::vector<std::vector<Op>> idle_streams(int n) {
  std::vector<std::vector<Op>> s(static_cast<std::size_t>(n));
  for (auto& v : s) v = ops({bar(), done()});
  return s;
}

TEST(CmpSystem, TrivialBarrierOnlyRun) {
  Simulator sim;
  const auto topo = Topology::mesh(2, 2);
  noc::IdealNetwork net(sim, "net", topo, {});
  CmpSystem cmp(sim, "cmp", net, topo, tiny_caches(), idle_streams(4));
  const Cycle t = cmp.run_to_completion();
  EXPECT_GT(t, 0u);
  EXPECT_TRUE(cmp.finished());
  // 4 BarArrive + 4 BarRelease.
  EXPECT_EQ(cmp.messages_sent(), 8u);
}

TEST(CmpSystem, SingleLoadMissFetchesFromMemory) {
  Simulator sim;
  const auto topo = Topology::mesh(2, 2);
  noc::IdealNetwork net(sim, "net", topo, {});
  auto streams = idle_streams(4);
  streams[0] = ops({ld(5), bar(), done()});  // line 5 homed at node 1
  CmpSystem cmp(sim, "cmp", net, topo, tiny_caches(), streams);
  cmp.run_to_completion();
  // GetS -> MemRead -> MemData -> Data, plus barrier traffic.
  EXPECT_EQ(sim.stats().counter_value("cmp.bank1.mem_reads"), 1u);
  EXPECT_EQ(cmp.core(0).l1_misses(), 1u);
}

TEST(CmpSystem, SecondLoadHitsInL1) {
  Simulator sim;
  const auto topo = Topology::mesh(2, 2);
  noc::IdealNetwork net(sim, "net", topo, {});
  auto streams = idle_streams(4);
  streams[0] = ops({ld(5), ld(5), ld(5), bar(), done()});
  CmpSystem cmp(sim, "cmp", net, topo, tiny_caches(), streams);
  cmp.run_to_completion();
  EXPECT_EQ(cmp.core(0).l1_misses(), 1u);
  EXPECT_EQ(cmp.core(0).l1_hits(), 2u);
}

TEST(CmpSystem, SecondSharerHitsInL2NotMemory) {
  Simulator sim;
  const auto topo = Topology::mesh(2, 2);
  noc::IdealNetwork net(sim, "net", topo, {});
  auto streams = idle_streams(4);
  streams[0] = ops({ld(5), bar(), done()});
  streams[1] = ops({comp(500), ld(5), bar(), done()});  // later, same line
  CmpSystem cmp(sim, "cmp", net, topo, tiny_caches(), streams);
  cmp.run_to_completion();
  EXPECT_EQ(sim.stats().counter_value("cmp.bank1.mem_reads"), 1u);
}

TEST(CmpSystem, StoreAfterSharersInvalidates) {
  Simulator sim;
  const auto topo = Topology::mesh(2, 2);
  noc::IdealNetwork net(sim, "net", topo, {});
  auto streams = idle_streams(4);
  streams[0] = ops({ld(5), bar(), done()});
  streams[1] = ops({ld(5), bar(), done()});
  streams[2] = ops({comp(2000), st(5), bar(), done()});
  CmpSystem cmp(sim, "cmp", net, topo, tiny_caches(), streams);
  cmp.run_to_completion();
  // Core 2's GetM must invalidate the two sharers.
  EXPECT_EQ(sim.stats().counter_value("cmp.bank1.invalidations"), 2u);
}

TEST(CmpSystem, ReadAfterWriteRecallsDirtyLine) {
  Simulator sim;
  const auto topo = Topology::mesh(2, 2);
  noc::IdealNetwork net(sim, "net", topo, {});
  auto streams = idle_streams(4);
  streams[0] = ops({st(5), bar(), done()});
  streams[1] = ops({comp(2000), ld(5), bar(), done()});
  CmpSystem cmp(sim, "cmp", net, topo, tiny_caches(), streams);
  cmp.run_to_completion();
  EXPECT_EQ(sim.stats().counter_value("cmp.bank1.recalls"), 1u);
}

TEST(CmpSystem, DirtyEvictionWritesBack) {
  Simulator sim;
  const auto topo = Topology::mesh(2, 2);
  noc::IdealNetwork net(sim, "net", topo, {});
  FullSysParams p = tiny_caches();
  p.l1_sets = 1;  // single set: conflict evictions guaranteed
  p.l1_ways = 2;
  auto streams = idle_streams(4);
  // Three dirty lines through a 2-way set: at least one writeback.
  streams[0] = ops({st(4), st(8), st(12), bar(), done()});
  CmpSystem cmp(sim, "cmp", net, topo, p, streams);
  cmp.run_to_completion();
  EXPECT_GE(sim.stats().counter_value("cmp.core0.writebacks"), 1u);
}

TEST(CmpSystem, PingPongWritesRecallRepeatedly) {
  Simulator sim;
  const auto topo = Topology::mesh(2, 2);
  noc::IdealNetwork net(sim, "net", topo, {});
  auto streams = idle_streams(4);
  streams[0] = ops({st(7), comp(300), st(7), comp(300), st(7), bar(), done()});
  streams[1] =
      ops({comp(150), st(7), comp(300), st(7), comp(300), st(7), bar(), done()});
  CmpSystem cmp(sim, "cmp", net, topo, tiny_caches(), streams);
  cmp.run_to_completion();
  EXPECT_GE(sim.stats().counter_value("cmp.bank3.recalls"), 3u);
}

TEST(CmpSystem, RuntimeGrowsWithSlowerNetwork) {
  auto runtime = [](Cycle per_hop) {
    Simulator sim;
    const auto topo = Topology::mesh(2, 2);
    noc::IdealNetwork::Params np;
    np.per_hop_latency = per_hop;
    noc::IdealNetwork net(sim, "net", topo, np);
    auto streams = idle_streams(4);
    streams[0] = ops({ld(1), ld(2), ld(3), ld(5), ld(6), bar(), done()});
    CmpSystem cmp(sim, "cmp", net, topo, tiny_caches(), streams);
    return cmp.run_to_completion();
  };
  EXPECT_GT(runtime(50), runtime(1));
}

TEST(CmpSystem, ObserverSeesEveryInjectionWithValidDeps) {
  Simulator sim;
  const auto topo = Topology::mesh(2, 2);
  noc::IdealNetwork net(sim, "net", topo, {});
  auto streams = idle_streams(4);
  streams[0] = ops({ld(5), st(5), bar(), done()});
  streams[1] = ops({ld(5), bar(), done()});
  CmpSystem cmp(sim, "cmp", net, topo, tiny_caches(), streams);
  std::vector<InjectionEvent> events;
  cmp.set_inject_observer(
      [&](const InjectionEvent& ev) { events.push_back(ev); });
  cmp.run_to_completion();
  EXPECT_EQ(events.size(), cmp.messages_sent());
  for (const auto& ev : events) {
    for (const auto& dep : ev.deps) {
      EXPECT_NE(dep.parent, kInvalidMsg);
      EXPECT_LT(dep.parent, ev.msg.id);  // causes precede effects
    }
  }
  // Barrier releases must depend on all four arrivals.
  bool saw_release = false;
  for (const auto& ev : events) {
    if (ev.proto == ProtoMsg::kBarRelease) {
      saw_release = true;
      EXPECT_EQ(ev.deps.size(), 4u);
    }
  }
  EXPECT_TRUE(saw_release);
}

TEST(CmpSystem, WorksOverRealEnoc) {
  Simulator sim;
  const auto topo = Topology::mesh(4, 4);
  enoc::EnocNetwork net(sim, "enoc", topo, enoc::EnocParams{});
  AppParams ap;
  ap.name = "fft";
  ap.cores = 16;
  ap.lines_per_core = 8;
  ap.iterations = 1;
  CmpSystem cmp(sim, "cmp", net, topo, tiny_caches(), build_app(ap));
  const Cycle t = cmp.run_to_completion();
  EXPECT_GT(t, 0u);
  EXPECT_EQ(net.injected_count(), net.delivered_count());
  EXPECT_GT(net.injected_count(), 0u);
}

TEST(CmpSystem, DeterministicOverEnoc) {
  auto run = [] {
    Simulator sim;
    const auto topo = Topology::mesh(4, 4);
    enoc::EnocNetwork net(sim, "enoc", topo, enoc::EnocParams{});
    AppParams ap;
    ap.name = "jacobi";
    ap.cores = 16;
    ap.lines_per_core = 8;
    ap.iterations = 1;
    CmpSystem cmp(sim, "cmp", net, topo, tiny_caches(), build_app(ap));
    return std::pair{cmp.run_to_completion(), net.injected_count()};
  };
  EXPECT_EQ(run(), run());
}

TEST(CmpSystem, CoreDetailModesAreTimingInvariant) {
  auto run = [](CoreDetail detail) {
    Simulator sim;
    const auto topo = Topology::mesh(4, 4);
    enoc::EnocNetwork net(sim, "enoc", topo, enoc::EnocParams{});
    AppParams ap;
    ap.name = "fft";
    ap.cores = 16;
    ap.lines_per_core = 8;
    ap.iterations = 1;
    FullSysParams p;
    p.l1_sets = 8;
    p.l1_ways = 2;
    p.l2_sets = 32;
    p.l2_ways = 4;
    p.core_detail = detail;
    CmpSystem cmp(sim, "cmp", net, topo, p, build_app(ap));
    const Cycle t = cmp.run_to_completion();
    return std::pair{t, sim.events_executed()};
  };
  const auto [t_folded, e_folded] = run(CoreDetail::kFolded);
  const auto [t_perop, e_perop] = run(CoreDetail::kPerOp);
  const auto [t_percyc, e_percyc] = run(CoreDetail::kPerCycle);
  // Identical cycle-level schedule...
  EXPECT_EQ(t_folded, t_perop);
  EXPECT_EQ(t_folded, t_percyc);
  // ...at (weakly, then strictly) increasing simulation cost. Per-op only
  // exceeds folded when hit/compute chains exist to fold; per-cycle always
  // pays an event per compute cycle.
  EXPECT_GE(e_perop, e_folded);
  EXPECT_GT(e_percyc, e_perop);
}

TEST(CmpSystem, MismatchedStreamsThrow) {
  Simulator sim;
  const auto topo = Topology::mesh(2, 2);
  noc::IdealNetwork net(sim, "net", topo, {});
  EXPECT_THROW(
      CmpSystem(sim, "cmp", net, topo, tiny_caches(), idle_streams(5)),
      std::invalid_argument);
}

class AppOverIdeal : public ::testing::TestWithParam<const char*> {};

TEST_P(AppOverIdeal, RunsToCompletionLosslessly) {
  Simulator sim;
  const auto topo = Topology::mesh(4, 4);
  noc::IdealNetwork net(sim, "net", topo, {});
  AppParams ap;
  ap.name = GetParam();
  ap.cores = 16;
  ap.lines_per_core = 12;
  ap.iterations = 2;
  CmpSystem cmp(sim, "cmp", net, topo, tiny_caches(), build_app(ap));
  const Cycle t = cmp.run_to_completion();
  EXPECT_GT(t, 0u);
  EXPECT_EQ(net.injected_count(), net.delivered_count());
  for (NodeId n = 0; n < 16; ++n) {
    EXPECT_TRUE(cmp.bank(n).quiescent()) << "bank " << n << " stuck";
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppOverIdeal,
                         ::testing::Values("jacobi", "fft", "lu", "sort",
                                           "barnes", "stream"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace sctm::fullsys
