file(REMOVE_RECURSE
  "CMakeFiles/sctm_common.dir/config.cpp.o"
  "CMakeFiles/sctm_common.dir/config.cpp.o.d"
  "CMakeFiles/sctm_common.dir/histogram.cpp.o"
  "CMakeFiles/sctm_common.dir/histogram.cpp.o.d"
  "CMakeFiles/sctm_common.dir/log.cpp.o"
  "CMakeFiles/sctm_common.dir/log.cpp.o.d"
  "CMakeFiles/sctm_common.dir/parallel.cpp.o"
  "CMakeFiles/sctm_common.dir/parallel.cpp.o.d"
  "CMakeFiles/sctm_common.dir/rng.cpp.o"
  "CMakeFiles/sctm_common.dir/rng.cpp.o.d"
  "CMakeFiles/sctm_common.dir/stats.cpp.o"
  "CMakeFiles/sctm_common.dir/stats.cpp.o.d"
  "CMakeFiles/sctm_common.dir/table.cpp.o"
  "CMakeFiles/sctm_common.dir/table.cpp.o.d"
  "CMakeFiles/sctm_common.dir/units.cpp.o"
  "CMakeFiles/sctm_common.dir/units.cpp.o.d"
  "libsctm_common.a"
  "libsctm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sctm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
