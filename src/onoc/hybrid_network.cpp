#include "onoc/hybrid_network.hpp"

namespace sctm::onoc {

HybridNetwork::HybridNetwork(Simulator& sim, std::string name,
                             const noc::Topology& topo,
                             const HybridParams& params)
    : Network(sim, std::move(name), topo.node_count()),
      topo_(topo),
      params_(params) {
  electrical_ = std::make_unique<enoc::EnocNetwork>(
      sim, this->name() + ".el", topo_, params_.electrical);
  optical_ = std::make_unique<OnocNetwork>(sim, this->name() + ".op", topo_,
                                           params_.optical);
  // Both layers deliver into the hybrid's single delivery stream; latency
  // accounting happens here so per-class histograms cover both layers.
  // DeliverFn is move-only, so each layer gets its own instance.
  install_deliver_up(*electrical_);
  install_deliver_up(*optical_);
}

void HybridNetwork::install_deliver_up(noc::Network& layer) {
  auto deliver_up = [this](const noc::Message& m) {
    noc::Message msg = m;
    msg.arrive_time = kNoCycle;  // deliver() restamps (same cycle)
    deliver(msg);
  };
  static_assert(noc::Network::DeliverFn::fits_inline<decltype(deliver_up)>(),
                "hybrid layer callback must stay within the SBO budget");
  layer.set_deliver_callback(std::move(deliver_up));
}

void HybridNetwork::install_fault_model(const fault::FaultSpec& spec) {
  electrical_->install_fault_model(spec);
  // Bit-complemented root: FaultModel derives all streams through a
  // splitmix-style finalizer, so any distinct root decorrelates the planes.
  optical_->install_fault_model(spec.with_seed(~spec.seed));
}

void HybridNetwork::reset() {
  Network::reset();
  electrical_->reset();
  optical_->reset();
  optical_count_ = 0;
  electrical_count_ = 0;
}

bool HybridNetwork::goes_optical(const noc::Message& msg) const {
  if (msg.src == msg.dst) return false;  // loopback stays local/electrical
  if (msg.size_bytes >= params_.size_threshold) return true;
  return topo_.distance(msg.src, msg.dst) >= params_.distance_threshold;
}

void HybridNetwork::inject(noc::Message msg) {
  note_injected(msg);
  if (goes_optical(msg)) {
    ++optical_count_;
    optical_->inject(msg);
  } else {
    ++electrical_count_;
    electrical_->inject(msg);
  }
}

bool HybridNetwork::idle() const {
  return electrical_->idle() && optical_->idle();
}

double HybridNetwork::optical_fraction() const {
  const auto total = optical_count_ + electrical_count_;
  return total == 0
             ? 0.0
             : static_cast<double>(optical_count_) / static_cast<double>(total);
}

}  // namespace sctm::onoc
