// Allocation-counting hook for the event kernel (own test binary: it
// overrides the global operator new/delete to count every heap allocation in
// the process).
//
// The acceptance bar for the allocation-free kernel: once the wheel buckets
// have warmed up to the workload's per-cycle event count, scheduling and
// dispatching events performs ZERO heap allocations — closures live in the
// InlineFn small buffer, bucket vectors retain their capacity across cycles,
// and batch dispatch touches no node-based containers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/driver.hpp"
#include "core/replay.hpp"
#include "core/replay_session.hpp"
#include "enoc/enoc_network.hpp"
#include "sim/simulator.hpp"

namespace {

// Atomic: the sharded-tick test runs worker-pool lanes, and any lane's
// allocation must both count and not race the counter.
std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace sctm {
namespace {

// A steady-state workload shaped like the simulator's real traffic: several
// self-rescheduling "components" whose events carry message-sized payloads,
// same-cycle (delta 0) bursts, multi-cycle hops, and a late-band flush per
// cycle — the SCTM replay pattern.
struct MessagePayload {
  std::uint64_t a = 1, b = 2, c = 3, d = 4, e = 5;
  std::uint32_t f = 6, g = 7;
};
static_assert(sizeof(MessagePayload) == 48);

struct Churn {
  Simulator& sim;
  MessagePayload payload{};
  std::uint64_t delivered = 0;
  Cycle until = 0;

  void hop() {
    if (sim.now() >= until) return;
    ++delivered;
    MessagePayload p = payload;
    // Same-cycle burst (router pipeline stages within a cycle)...
    sim.schedule_in(0, [this, p] {
      (void)p;
      // ...then a short link hop...
      sim.schedule_in(1 + (delivered % 3), [this, p2 = p] {
        (void)p2;
        hop();
      });
    });
  }

  void late_flush() {
    if (sim.now() >= until) return;
    sim.schedule_late(sim.now() + 1, [this] { late_flush(); });
  }
};

TEST(AllocFreeKernel, SteadyStateSchedulesAndDispatchesWithoutHeapTraffic) {
  Simulator sim;
  constexpr int kComponents = 16;
  std::vector<Churn> comps;
  comps.reserve(kComponents);
  for (int i = 0; i < kComponents; ++i) {
    comps.push_back(Churn{sim, {}, 0, /*until=*/4000});
  }

  // Warmup: grow bucket vectors to the workload's per-cycle footprint.
  for (auto& c : comps) c.hop();
  comps.front().late_flush();
  sim.run_until(2000);
  ASSERT_GT(sim.events_executed(), 1000u);

  // Steady state: not one allocation for thousands of schedule+dispatch
  // round trips, and not one InlineFn heap fallback.
  const std::uint64_t allocs_before = g_allocs;
  const std::uint64_t fallbacks_before = InlineFn::heap_fallbacks();
  const std::uint64_t executed_before = sim.events_executed();
  sim.run_until(4000);
  const std::uint64_t executed = sim.events_executed() - executed_before;
  EXPECT_GT(executed, 4000u);
  EXPECT_EQ(g_allocs - allocs_before, 0u)
      << "steady-state kernel performed heap allocations over " << executed
      << " events";
  EXPECT_EQ(InlineFn::heap_fallbacks() - fallbacks_before, 0u);
}

TEST(AllocFreeKernel, SteadyStateRouterTraversalIsAllocationFree) {
  // The full flit datapath — network inject, flit synthesis into the staging
  // ring, VC buffering, three-phase pipeline, link events, credits, ejection
  // and delivery — must stop touching the heap once every retained-capacity
  // structure (flit rings, pending-message table, wheel buckets, latency
  // histogram) has warmed up to the workload's footprint.
  Simulator sim;
  const auto topo = noc::Topology::mesh(4, 4);
  enoc::EnocNetwork net(sim, "enoc", topo, enoc::EnocParams{});
  std::uint64_t delivered = 0;
  net.set_deliver_callback([&](const noc::Message&) { ++delivered; });

  // Rounds start phase-aligned to the 64-bucket calendar wheel so the
  // steady-state rounds revisit exactly the bucket indices the warmup rounds
  // grew (bucket capacity is retained per index; an unaligned burst would
  // land its event spike in a cold bucket and honestly need to grow it).
  constexpr Cycle kRoundStride = 512;
  static_assert(kRoundStride % 64 == 0);
  MsgId next_id = 1;
  int round = 0;
  auto run_round = [&] {
    const Cycle start = static_cast<Cycle>(round++) * kRoundStride;
    sim.schedule_at(start, [&] {
      for (int i = 0; i < 16; ++i) {
        noc::Message m;
        m.id = next_id++;
        m.src = static_cast<NodeId>(i);
        m.dst = static_cast<NodeId>((i * 7 + 5) % 16);
        if (m.dst == m.src) m.dst = (m.dst + 1) % 16;
        m.size_bytes = 64;
        m.cls = noc::MsgClass::kData;
        net.inject(m);
      }
    });
    sim.run();
  };

  for (int r = 0; r < 4; ++r) run_round();
  ASSERT_EQ(delivered, 64u);

  const std::uint64_t allocs_before = g_allocs;
  const std::uint64_t fallbacks_before = InlineFn::heap_fallbacks();
  for (int r = 0; r < 8; ++r) run_round();
  EXPECT_EQ(delivered, 192u);
  EXPECT_EQ(g_allocs - allocs_before, 0u)
      << "steady-state flit injection/forwarding hit the heap";
  EXPECT_EQ(InlineFn::heap_fallbacks() - fallbacks_before, 0u);
}

TEST(AllocFreeKernel, ReplayEligibilityBatcherSteadyStateIsAllocationFree) {
  // The replay scheduler's per-cycle injection batching (cycle -> record
  // batch) must retain capacity across cycles: after warming up to the
  // workload's footprint (batch sizes, concurrent in-flight cycles), the
  // add/flush churn of a steady-state replay slice performs zero heap
  // allocations. This is the structure that replaced the per-pass
  // unordered_map<Cycle, vector> in replay_once().
  core::EligibilityBatcher batcher;
  std::uint64_t dispatched = 0;
  auto sink = [&dispatched](std::uint32_t) { ++dispatched; };

  constexpr int kInFlight = 16;   // concurrent eligible cycles
  constexpr int kBatch = 48;      // records per cycle (same-cycle burst)
  auto run_slice = [&](Cycle base, int cycles) {
    for (int c = 0; c < cycles; ++c) {
      const Cycle t = base + static_cast<Cycle>(c);
      for (std::uint32_t i = 0; i < kBatch; ++i) {
        // Out-of-order adds, as dependency resolution produces them.
        batcher.add(t, (kBatch - i) * 7 % 97);
      }
      if (c >= kInFlight) batcher.flush(t - kInFlight, sink);
    }
    for (int c = cycles - kInFlight; c < cycles; ++c) {
      batcher.flush(base + static_cast<Cycle>(c), sink);
    }
  };

  run_slice(0, 256);  // warmup: grow the slot pool and the cycle map
  ASSERT_EQ(dispatched, 256u * kBatch);

  const std::uint64_t allocs_before = g_allocs;
  run_slice(1000, 2048);  // steady state at the same footprint
  EXPECT_EQ(dispatched, (256u + 2048u) * kBatch);
  EXPECT_EQ(g_allocs - allocs_before, 0u)
      << "steady-state eligibility batching hit the heap";
}

TEST(AllocFreeKernel, ReplaySessionPassesAfterWarmupAreAllocationFree) {
  // The session reset protocol end-to-end: capture a mesh workload (free to
  // allocate), bind one ReplaySession, run two warmup passes — the first
  // sizes every pass buffer, wheel bucket, flit ring and batch slot; the
  // second proves the footprint converged — then assert that further passes
  // never touch the heap. This is the acceptance bar for reset() being
  // capacity-retaining at every layer (simulator, network, routers, replay
  // buffers) rather than a convenience clear.
  fullsys::AppParams app;
  app.name = "jacobi";
  app.cores = 16;
  app.lines_per_core = 8;
  app.iterations = 1;
  fullsys::FullSysParams sys;
  sys.l1_sets = 8;
  sys.l1_ways = 2;
  sys.l2_sets = 32;
  sys.l2_ways = 4;
  core::NetSpec spec;
  spec.kind = core::NetKind::kEnoc;
  const auto exec = core::run_execution(app, spec, sys);
  const core::ReplayTrace rt(exec.trace);
  ASSERT_FALSE(rt.empty());

  core::ReplaySession session(rt, core::make_factory(spec), {});
  session.run_pass();  // warmup: size pass buffers, buckets, rings
  session.run_pass();  // warmup: prove the footprint converged
  const Cycle runtime = session.result().runtime;

  const std::uint64_t allocs_before = g_allocs;
  const std::uint64_t fallbacks_before = InlineFn::heap_fallbacks();
  constexpr int kPasses = 8;
  for (int p = 0; p < kPasses; ++p) {
    const auto& res = session.run_pass();
    ASSERT_EQ(res.runtime, runtime);  // still the exact schedule
  }
  EXPECT_EQ(g_allocs - allocs_before, 0u)
      << "replay passes 2..N hit the heap (reset protocol leaked capacity)";
  EXPECT_EQ(InlineFn::heap_fallbacks() - fallbacks_before, 0u);
}

TEST(AllocFreeKernel, ShardedTickSteadyStateIsAllocationFree) {
  // The parallel engine must hold the same bar: with a 4-lane worker pool
  // sharding every ENoC cycle (grain 0), warmed-up passes may not allocate
  // on the dispatching thread — outboxes, clear masks and shard state all
  // retain capacity, and WorkerPool::run() publishes phases without heap
  // traffic. g_allocs counts process-wide (atomically), so worker lanes are
  // held to the same zero: warmed-up router ticks only push into
  // capacity-retaining outboxes and fixed-capacity FlitRing/scratch.
  fullsys::AppParams app;
  app.name = "jacobi";
  app.cores = 16;
  app.lines_per_core = 8;
  app.iterations = 1;
  fullsys::FullSysParams sys;
  sys.l1_sets = 8;
  sys.l1_ways = 2;
  sys.l2_sets = 32;
  sys.l2_ways = 4;
  core::NetSpec spec;
  spec.kind = core::NetKind::kEnoc;
  const auto exec = core::run_execution(app, spec, sys);
  const core::ReplayTrace rt(exec.trace);
  ASSERT_FALSE(rt.empty());

  core::ReplayConfig cfg;
  cfg.threads = 4;
  core::ReplaySession session(rt, spec, cfg);
  // Grain 0 everywhere: router-tick sharding plus the session's own sharded
  // phases (seed scan, delivered-dependency scan, eligibility-batch sort).
  session.set_parallel_grains_for_test(0);
  session.run_pass();  // warmup: size pass buffers, shard outboxes, masks
  session.run_pass();  // warmup: prove the footprint converged
  const Cycle runtime = session.result().runtime;

  const std::uint64_t allocs_before = g_allocs;
  const std::uint64_t fallbacks_before = InlineFn::heap_fallbacks();
  constexpr int kPasses = 8;
  for (int p = 0; p < kPasses; ++p) {
    const auto& res = session.run_pass();
    ASSERT_EQ(res.runtime, runtime);  // sharded == serial schedule, exactly
  }
  EXPECT_EQ(g_allocs - allocs_before, 0u)
      << "sharded replay passes hit the heap (shard state leaked capacity)";
  EXPECT_EQ(InlineFn::heap_fallbacks() - fallbacks_before, 0u);
}

TEST(AllocFreeKernel, ShardedTickHybridOpticalSteadyStateIsAllocationFree) {
  // Same bar over the optical plane: the hybrid steers the workload across
  // both layers, so warmed-up passes exercise the ENoC shard outboxes AND
  // the ONoC per-channel arbitration queues / grant outboxes, with the
  // session's sharded scan/sort phases engaged on top. None of it may touch
  // the heap after two warmup passes.
  fullsys::AppParams app;
  app.name = "jacobi";
  app.cores = 16;
  app.lines_per_core = 8;
  app.iterations = 1;
  fullsys::FullSysParams sys;
  sys.l1_sets = 8;
  sys.l1_ways = 2;
  sys.l2_sets = 32;
  sys.l2_ways = 4;
  core::NetSpec spec;
  spec.kind = core::NetKind::kHybrid;
  const auto exec = core::run_execution(app, spec, sys);
  const core::ReplayTrace rt(exec.trace);
  ASSERT_FALSE(rt.empty());

  core::ReplayConfig cfg;
  cfg.threads = 4;
  core::ReplaySession session(rt, spec, cfg);
  session.set_parallel_grains_for_test(0);
  session.run_pass();  // warmup: size arb queues, grant outboxes, batches
  session.run_pass();  // warmup: prove the footprint converged
  const Cycle runtime = session.result().runtime;

  const std::uint64_t allocs_before = g_allocs;
  const std::uint64_t fallbacks_before = InlineFn::heap_fallbacks();
  constexpr int kPasses = 8;
  for (int p = 0; p < kPasses; ++p) {
    const auto& res = session.run_pass();
    ASSERT_EQ(res.runtime, runtime);
  }
  EXPECT_EQ(g_allocs - allocs_before, 0u)
      << "sharded optical-plane replay passes hit the heap";
  EXPECT_EQ(InlineFn::heap_fallbacks() - fallbacks_before, 0u);
}

TEST(AllocFreeKernel, FarHeapPathAllocatesOnlyForGrowth) {
  // Far-future schedules may grow the far heap's vector, but re-using the
  // same depth afterwards must be allocation-free too.
  Simulator sim;
  int ran = 0;
  // A +200 stride visits 8 distinct wheel buckets (200 mod 64 = 8); warm up
  // one full lap so every bucket on the orbit has grown its vector once.
  for (int round = 0; round < 10; ++round) {
    sim.schedule_in(200, [&] { ++ran; });
    sim.run();
  }
  const std::uint64_t before = g_allocs;
  for (int round = 0; round < 50; ++round) {
    sim.schedule_in(200, [&] { ++ran; });
    sim.run();
  }
  EXPECT_EQ(g_allocs - before, 0u);
  EXPECT_EQ(ran, 60);
}

}  // namespace
}  // namespace sctm
