#include "fullsys/params.hpp"

#include <stdexcept>

namespace sctm::fullsys {

void FullSysParams::validate() const {
  if (l1_sets < 1 || l1_ways < 1 || l2_sets < 1 || l2_ways < 1) {
    throw std::invalid_argument("FullSysParams: non-positive cache geometry");
  }
  if (mem_gap < 1) {
    throw std::invalid_argument("FullSysParams: mem_gap must be >= 1");
  }
}

FullSysParams FullSysParams::from_config(const Config& cfg) {
  FullSysParams p;
  p.l1_sets = static_cast<int>(cfg.get_int("fullsys.l1_sets", p.l1_sets));
  p.l1_ways = static_cast<int>(cfg.get_int("fullsys.l1_ways", p.l1_ways));
  p.l2_sets = static_cast<int>(cfg.get_int("fullsys.l2_sets", p.l2_sets));
  p.l2_ways = static_cast<int>(cfg.get_int("fullsys.l2_ways", p.l2_ways));
  auto cyc = [&cfg](const char* key, Cycle def) {
    return static_cast<Cycle>(cfg.get_int(key, static_cast<std::int64_t>(def)));
  };
  p.l1_hit_latency = cyc("fullsys.l1_hit_latency", p.l1_hit_latency);
  p.l1_miss_detect = cyc("fullsys.l1_miss_detect", p.l1_miss_detect);
  p.l2_latency = cyc("fullsys.l2_latency", p.l2_latency);
  p.dir_latency = cyc("fullsys.dir_latency", p.dir_latency);
  p.fill_latency = cyc("fullsys.fill_latency", p.fill_latency);
  p.mem_latency = cyc("fullsys.mem_latency", p.mem_latency);
  p.mem_gap = cyc("fullsys.mem_gap", p.mem_gap);
  p.barrier_home = static_cast<NodeId>(
      cfg.get_int("fullsys.barrier_home", p.barrier_home));
  const std::string detail = cfg.get_string("fullsys.core_detail", "folded");
  if (detail == "folded") p.core_detail = CoreDetail::kFolded;
  else if (detail == "per-op") p.core_detail = CoreDetail::kPerOp;
  else if (detail == "per-cycle") p.core_detail = CoreDetail::kPerCycle;
  else {
    throw std::invalid_argument("fullsys.core_detail: unknown mode " + detail);
  }
  return p;
}

}  // namespace sctm::fullsys
