#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "trace/trace_io.hpp"
#include "tracestore/catalog.hpp"

namespace sctm::tracestore {
namespace {

namespace fs = std::filesystem;

trace::Trace make_trace(const char* app, std::uint64_t seed,
                        std::size_t records) {
  trace::Trace t;
  t.app = app;
  t.capture_network = "enoc mesh 2x2";
  t.nodes = 4;
  t.capture_runtime = 1000;
  t.seed = seed;
  for (std::size_t i = 0; i < records; ++i) {
    trace::TraceRecord r;
    r.id = i + 1;
    r.src = static_cast<NodeId>(i % 4);
    r.dst = static_cast<NodeId>((i + 1) % 4);
    r.size_bytes = 64;
    r.cls = noc::MsgClass::kData;
    r.inject_time = 10 * i;
    r.arrive_time = 10 * i + 5;
    t.records.push_back(r);
  }
  return t;
}

struct TempDir {
  TempDir() : path(fs::temp_directory_path() /
                   ("sctm_catalog_test_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  fs::path path;
};

TEST(TraceCatalogTest, AddListFindRoundTrip) {
  TempDir tmp;
  TraceCatalog cat(tmp.path.string());
  const auto a = cat.add(make_trace("fft", 1, 10), "2026-08-07T00:00:00Z");
  const auto b = cat.add(make_trace("lu", 2, 20), "2026-08-07T00:00:01Z");
  EXPECT_NE(a.hash, b.hash);
  EXPECT_EQ(a.app, "fft");
  EXPECT_EQ(a.records, 10u);
  EXPECT_EQ(b.records, 20u);
  EXPECT_TRUE(fs::exists(cat.container_path(a)));
  EXPECT_TRUE(fs::exists(cat.container_path(b)));

  const auto entries = cat.list();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_LT(entries[0].hash, entries[1].hash);  // sorted by hash

  const auto found = cat.find(a.hash.substr(0, 6));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->hash, a.hash);
  EXPECT_EQ(found->seed, 1u);
  EXPECT_FALSE(cat.find("not-hex").has_value());
  EXPECT_FALSE(cat.find("").has_value());  // empty prefix is never valid
  if (a.hash[0] == b.hash[0]) {
    // Shared first digit: a one-digit prefix is ambiguous.
    EXPECT_FALSE(cat.find(a.hash.substr(0, 1)).has_value());
  }
}

TEST(TraceCatalogTest, AddIsIdempotentByContent) {
  TempDir tmp;
  TraceCatalog cat(tmp.path.string());
  const auto t = make_trace("fft", 7, 12);
  const auto first = cat.add(t, "2026-08-07T00:00:00Z");
  // Same content again (different timestamp): no new entry, original kept.
  const auto again = cat.add(t, "2026-08-07T09:99:99Z");
  EXPECT_EQ(again.hash, first.hash);
  EXPECT_EQ(again.created, first.created);
  EXPECT_EQ(cat.list().size(), 1u);
}

TEST(TraceCatalogTest, StoredContainerLoadsBack) {
  TempDir tmp;
  TraceCatalog cat(tmp.path.string());
  const auto t = make_trace("sort", 3, 25);
  const auto entry = cat.add(t, "2026-08-07T00:00:00Z");
  // The stored container is a normal v2 file: the generic loader reads it.
  EXPECT_EQ(trace::read_binary_file(cat.container_path(entry)), t);
}

TEST(TraceCatalogTest, ListSkipsUnparsableManifests) {
  TempDir tmp;
  TraceCatalog cat(tmp.path.string());
  cat.add(make_trace("fft", 1, 5), "2026-08-07T00:00:00Z");
  std::ofstream(tmp.path / "garbage.json") << "{not json";
  std::ofstream(tmp.path / "half.json") << "{\"schema\": \"wrong.v9\"}";
  EXPECT_EQ(cat.list().size(), 1u);
}

TEST(TraceCatalogTest, ManifestJsonRoundTrips) {
  CatalogEntry e;
  e.hash = "00ff00ff00ff00ff";
  e.file = "00ff00ff00ff00ff.trc2";
  e.created = "2026-08-07T00:00:00Z";
  e.app = "fft";
  e.capture_network = "enoc \"mesh\" 4x4";  // needs JSON escaping
  e.nodes = 16;
  e.capture_runtime = 4390;
  e.seed = 42;
  e.records = 2720;
  e.chunk_target = 4096;
  e.chunks = 1;
  e.file_bytes = 32841;
  const auto back = parse_manifest(e.manifest_json());
  EXPECT_EQ(back.hash, e.hash);
  EXPECT_EQ(back.file, e.file);
  EXPECT_EQ(back.capture_network, e.capture_network);
  EXPECT_EQ(back.records, e.records);
  EXPECT_EQ(back.chunk_target, e.chunk_target);
  EXPECT_EQ(back.file_bytes, e.file_bytes);
  EXPECT_THROW(parse_manifest("{\"schema\":\"other.v1\"}"),
               std::runtime_error);
}

}  // namespace
}  // namespace sctm::tracestore
