file(REMOVE_RECURSE
  "CMakeFiles/sweep_injection.dir/sweep_injection.cpp.o"
  "CMakeFiles/sweep_injection.dir/sweep_injection.cpp.o.d"
  "sweep_injection"
  "sweep_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
