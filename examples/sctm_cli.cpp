// sctm_cli — command-line front end for the capture/replay workflow.
//
//   sctm_cli capture  --app fft --net enoc --out /tmp/t.bin [--cores 16]
//                     [--lines 16] [--iters 2] [--mesh 4x4]
//   sctm_cli replay   --trace /tmp/t.bin --net onoc-token [--mode sctm]
//                     [--window W] [--iters-max 8] [--csv out.csv]
//   sctm_cli inspect  --trace /tmp/t.bin [--text]
//   sctm_cli exec     --app fft --net onoc-setup [...]   (execution-driven)
//   sctm_cli validate --json metrics.json     (schema-check a metrics doc)
//
// Every run subcommand accepts --stats-json <path> to emit the machine-
// readable run-metrics document (schema sctm.run_metrics.v1: manifest +
// per-phase timing + stat-registry snapshot + results); `validate` is the
// matching schema checker, used by CI as the emission gate.
//
// Networks: ideal | enoc | onoc-token | onoc-setup | hybrid.
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/json.hpp"
#include "common/run_metrics.hpp"
#include "common/table.hpp"
#include "core/driver.hpp"
#include "core/error_metrics.hpp"
#include "trace/dependency_graph.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace sctm;

[[noreturn]] void usage(const char* why) {
  std::fprintf(stderr, "error: %s\n", why);
  std::fprintf(
      stderr,
      "usage:\n"
      "  sctm_cli capture --app <name> --net <kind> --out <file> "
      "[--cores N] [--lines N] [--iters N] [--mesh WxH] [--seed S]\n"
      "  sctm_cli replay  --trace <file> --net <kind> [--mode naive|sctm] "
      "[--window W] [--iters-max N] [--csv <file>] [--mesh WxH]\n"
      "  sctm_cli inspect --trace <file> [--text]\n"
      "  sctm_cli exec    --app <name> --net <kind> [--cores N] [--lines N] "
      "[--iters N] [--mesh WxH] [--stats <file>]\n"
      "  sctm_cli validate --json <file>\n"
      "all run subcommands accept --stats-json <file> (machine-readable "
      "run metrics)\n"
      "networks: ideal enoc onoc-token onoc-setup hybrid\n"
      "apps: jacobi fft lu sort barnes stream\n");
  std::exit(2);
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> out;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage(("unexpected token " + key).c_str());
    key = key.substr(2);
    if (key == "text") {  // boolean flag
      out[key] = "1";
      continue;
    }
    if (i + 1 >= argc) usage(("missing value for --" + key).c_str());
    out[key] = argv[++i];
  }
  return out;
}

core::NetKind net_kind(const std::string& s) {
  if (s == "ideal") return core::NetKind::kIdeal;
  if (s == "enoc") return core::NetKind::kEnoc;
  if (s == "onoc-token") return core::NetKind::kOnocToken;
  if (s == "onoc-setup") return core::NetKind::kOnocSetup;
  if (s == "hybrid") return core::NetKind::kHybrid;
  usage(("unknown network " + s).c_str());
}

noc::Topology parse_mesh(const std::string& s) {
  const auto x = s.find('x');
  if (x == std::string::npos) usage("--mesh expects WxH");
  return noc::Topology::mesh(std::stoi(s.substr(0, x)),
                             std::stoi(s.substr(x + 1)));
}

core::NetSpec spec_from(const std::map<std::string, std::string>& f) {
  core::NetSpec spec;
  const auto net = f.find("net");
  if (net == f.end()) usage("--net required");
  spec.kind = net_kind(net->second);
  if (const auto m = f.find("mesh"); m != f.end()) {
    spec.topo = parse_mesh(m->second);
  }
  return spec;
}

fullsys::AppParams app_from(const std::map<std::string, std::string>& f,
                            const core::NetSpec& spec) {
  fullsys::AppParams app;
  const auto a = f.find("app");
  if (a == f.end()) usage("--app required");
  app.name = a->second;
  app.cores = spec.topo.node_count();
  if (const auto it = f.find("cores"); it != f.end()) {
    app.cores = std::stoi(it->second);
  }
  if (const auto it = f.find("lines"); it != f.end()) {
    app.lines_per_core = std::stoi(it->second);
  } else {
    app.lines_per_core = 16;
  }
  if (const auto it = f.find("iters"); it != f.end()) {
    app.iterations = std::stoi(it->second);
  } else {
    app.iterations = 2;
  }
  if (const auto it = f.find("seed"); it != f.end()) {
    app.seed = std::stoull(it->second);
  }
  return app;
}

/// ISO-8601 UTC timestamp for run manifests (the metrics layer itself never
/// reads the clock).
std::string now_iso8601() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Writes `m` when --stats-json was given; reports the path on stdout.
void maybe_emit_stats_json(const std::map<std::string, std::string>& f,
                           const sctm::RunMetrics& m) {
  const auto it = f.find("stats-json");
  if (it == f.end()) return;
  m.write_file(it->second);
  std::printf("run metrics json -> %s\n", it->second.c_str());
}

int cmd_capture(const std::map<std::string, std::string>& f) {
  const auto spec = spec_from(f);
  const auto app = app_from(f, spec);
  const auto out = f.find("out");
  if (out == f.end()) usage("--out required");
  const auto exec = core::run_execution(app, spec, {});
  trace::write_binary_file(exec.trace, out->second);
  std::printf("captured %zu messages (%s on %s), runtime %llu cycles, "
              "%.3f s wall -> %s\n",
              exec.trace.records.size(), app.name.c_str(),
              spec.describe().c_str(),
              static_cast<unsigned long long>(exec.runtime),
              exec.wall_seconds, out->second.c_str());
  auto metrics = core::metrics_for_execution(app, spec, exec,
                                             "sctm_cli capture",
                                             now_iso8601());
  metrics.manifest.set("trace_out", out->second);
  maybe_emit_stats_json(f, metrics);
  return 0;
}

int cmd_replay(const std::map<std::string, std::string>& f) {
  const auto tr = f.find("trace");
  if (tr == f.end()) usage("--trace required");
  const auto loaded = trace::read_binary_file(tr->second);
  auto spec = spec_from(f);
  // Default the fabric to the trace's node count when not overridden.
  if (f.find("mesh") == f.end() && loaded.nodes == 16) {
    spec.topo = noc::Topology::mesh(4, 4);
  } else if (f.find("mesh") == f.end() && loaded.nodes == 64) {
    spec.topo = noc::Topology::mesh(8, 8);
  }

  core::ReplayConfig cfg;
  if (const auto m = f.find("mode"); m != f.end()) {
    if (m->second == "naive") cfg.mode = core::ReplayMode::kNaive;
    else if (m->second == "sctm") cfg.mode = core::ReplayMode::kSelfCorrecting;
    else usage("--mode must be naive or sctm");
  }
  if (const auto w = f.find("window"); w != f.end()) {
    cfg.dependency_window = static_cast<std::uint32_t>(std::stoul(w->second));
  }
  if (const auto it = f.find("iters-max"); it != f.end()) {
    cfg.max_iterations = std::stoi(it->second);
  }

  const auto rep = core::run_replay(loaded, spec, cfg);
  const auto h = rep.result.latency_histogram();
  std::printf("replayed %zu messages on %s (%s): runtime %llu cycles, "
              "latency mean %.1f p50 %llu p99 %llu, %d iteration(s), "
              "%.4f s wall\n",
              loaded.records.size(), spec.describe().c_str(),
              core::to_string(cfg.mode),
              static_cast<unsigned long long>(rep.result.runtime), h.mean(),
              static_cast<unsigned long long>(h.percentile(0.5)),
              static_cast<unsigned long long>(h.percentile(0.99)),
              rep.result.iterations, rep.wall_seconds);
  if (const auto csv = f.find("csv"); csv != f.end()) {
    Table t("replay");
    t.set_header({"id", "inject", "arrive", "latency"});
    for (std::size_t i = 0; i < loaded.records.size(); ++i) {
      t.add_row({Table::fmt(loaded.records[i].id),
                 Table::fmt(rep.result.inject_time[i]),
                 Table::fmt(rep.result.arrive_time[i]),
                 Table::fmt(rep.result.arrive_time[i] -
                            rep.result.inject_time[i])});
    }
    t.write_csv(csv->second);
    std::printf("per-message csv -> %s\n", csv->second.c_str());
  }
  maybe_emit_stats_json(
      f, core::metrics_for_replay(loaded, spec, cfg, rep, "sctm_cli replay",
                                  now_iso8601()));
  return 0;
}

int cmd_inspect(const std::map<std::string, std::string>& f) {
  const auto tr = f.find("trace");
  if (tr == f.end()) usage("--trace required");
  const auto loaded = trace::read_binary_file(tr->second);
  const trace::DependencyGraph graph(loaded);
  const auto s = core::summarize(loaded);
  std::printf("app=%s capture-net='%s' nodes=%d seed=%llu\n",
              loaded.app.c_str(), loaded.capture_network.c_str(), loaded.nodes,
              static_cast<unsigned long long>(loaded.seed));
  std::printf("records=%zu runtime=%llu latency mean=%.1f p99=%llu\n",
              loaded.records.size(),
              static_cast<unsigned long long>(loaded.capture_runtime),
              s.mean_latency, static_cast<unsigned long long>(s.p99_latency));
  std::printf("deps/record=%.2f roots=%zu critical-path=%zu records\n",
              graph.mean_deps(), graph.roots().size(),
              graph.critical_path_length());
  if (f.count("text")) std::fputs(trace::to_text(loaded).c_str(), stdout);

  if (f.count("stats-json")) {
    RunMetrics m;
    m.manifest.tool = "sctm_cli inspect";
    m.manifest.created = now_iso8601();
    m.manifest.set("trace", core::trace_id(loaded));
    m.manifest.set("app", loaded.app);
    m.manifest.set("capture_net", loaded.capture_network);
    m.manifest.set("nodes", loaded.nodes);
    m.manifest.set("seed", loaded.seed);
    Histogram lat;
    for (const auto& r : loaded.records) lat.add(r.latency());
    m.add_histogram("latency", lat, /*with_buckets=*/true);
    JsonWriter results;
    results.begin_object();
    results.key("records");
    results.value(static_cast<std::uint64_t>(loaded.records.size()));
    results.key("capture_runtime_cycles");
    results.value(std::uint64_t{loaded.capture_runtime});
    results.key("mean_deps_per_record");
    results.value(graph.mean_deps());
    results.key("roots");
    results.value(static_cast<std::uint64_t>(graph.roots().size()));
    results.key("critical_path_records");
    results.value(static_cast<std::uint64_t>(graph.critical_path_length()));
    results.end_object();
    m.set_results_json(std::move(results).str());
    maybe_emit_stats_json(f, m);
  }
  return 0;
}

int cmd_exec(const std::map<std::string, std::string>& f) {
  const auto spec = spec_from(f);
  const auto app = app_from(f, spec);
  const auto exec = core::run_execution(app, spec, {});
  const auto s = core::summarize(exec.trace);
  std::printf("%s on %s: runtime %llu cycles, %zu messages, latency mean "
              "%.1f p99 %llu, %.3f s wall\n",
              app.name.c_str(), spec.describe().c_str(),
              static_cast<unsigned long long>(exec.runtime),
              exec.trace.records.size(), s.mean_latency,
              static_cast<unsigned long long>(s.p99_latency),
              exec.wall_seconds);
  if (const auto it = f.find("stats"); it != f.end()) {
    std::FILE* out = std::fopen(it->second.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", it->second.c_str());
      return 1;
    }
    std::fputs(exec.stats_report.c_str(), out);
    std::fclose(out);
    std::printf("full stats dump -> %s\n", it->second.c_str());
  }
  maybe_emit_stats_json(f, core::metrics_for_execution(app, spec, exec,
                                                       "sctm_cli exec",
                                                       now_iso8601()));
  return 0;
}

int cmd_validate(const std::map<std::string, std::string>& f) {
  const auto it = f.find("json");
  if (it == f.end()) usage("--json required");
  std::ifstream in(it->second, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", it->second.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  if (!validate_metrics_json(buf.str(), &err)) {
    std::fprintf(stderr, "invalid metrics document %s: %s\n",
                 it->second.c_str(), err.c_str());
    return 1;
  }
  std::printf("%s: valid %s document\n", it->second.c_str(),
              std::string(kMetricsSchema).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage("missing subcommand");
  const std::string cmd = argv[1];
  const auto flags = parse_flags(argc, argv, 2);
  try {
    if (cmd == "capture") return cmd_capture(flags);
    if (cmd == "replay") return cmd_replay(flags);
    if (cmd == "inspect") return cmd_inspect(flags);
    if (cmd == "exec") return cmd_exec(flags);
    if (cmd == "validate") return cmd_validate(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage(("unknown subcommand " + cmd).c_str());
}
