#include "fullsys/params.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sctm::fullsys {
namespace {

TEST(FullSysParamsTest, DefaultsValid) {
  FullSysParams p;
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.core_detail, CoreDetail::kFolded);
}

TEST(FullSysParamsTest, ValidationRejectsBadGeometry) {
  FullSysParams p;
  p.l1_sets = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = FullSysParams{};
  p.mem_gap = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(FullSysParamsTest, FromConfigOverrides) {
  const auto cfg = Config::from_string(
      "fullsys.l1_sets = 32\nfullsys.l1_ways = 8\nfullsys.l2_latency = 10\n"
      "fullsys.mem_latency = 200\nfullsys.core_detail = per-cycle\n");
  const auto p = FullSysParams::from_config(cfg);
  EXPECT_EQ(p.l1_sets, 32);
  EXPECT_EQ(p.l1_ways, 8);
  EXPECT_EQ(p.l2_latency, 10u);
  EXPECT_EQ(p.mem_latency, 200u);
  EXPECT_EQ(p.core_detail, CoreDetail::kPerCycle);
}

TEST(FullSysParamsTest, FromConfigRejectsUnknownDetail) {
  EXPECT_THROW(FullSysParams::from_config(Config::from_string(
                   "fullsys.core_detail = quantum\n")),
               std::invalid_argument);
}

}  // namespace
}  // namespace sctm::fullsys
