#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace sctm::log {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<std::uint64_t> g_warnings{0};

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel level() { return g_level.load(std::memory_order_relaxed); }

bool is_enabled(LogLevel lvl) {
  return static_cast<int>(lvl) >= static_cast<int>(level());
}

void write(LogLevel lvl, std::string_view module, std::string_view msg) {
  if (static_cast<int>(lvl) >= static_cast<int>(LogLevel::kWarn)) {
    g_warnings.fetch_add(1, std::memory_order_relaxed);
  }
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(lvl),
               static_cast<int>(module.size()), module.data(),
               static_cast<int>(msg.size()), msg.data());
}

std::uint64_t warning_count() { return g_warnings.load(std::memory_order_relaxed); }

}  // namespace sctm::log
