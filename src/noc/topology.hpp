// Regular topologies: 2D mesh, 2D torus, ring.
//
// Port numbering is uniform across topologies so routers and routing
// functions stay topology-agnostic: directional ports first (kEast..kSouth,
// or the two ring directions), then one local port at index radix().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace sctm::noc {

enum Dir : int {
  kEast = 0,
  kWest = 1,
  kNorth = 2,
  kSouth = 3,
  // Ring aliases: clockwise (next node) / counter-clockwise.
  kRingCw = 0,
  kRingCcw = 1,
};

struct Coord {
  int x = 0;
  int y = 0;
  bool operator==(const Coord&) const = default;
};

class Topology {
 public:
  enum class Kind { kMesh, kTorus, kRing };

  static Topology mesh(int width, int height);
  static Topology torus(int width, int height);
  static Topology ring(int nodes);

  Kind kind() const { return kind_; }
  int width() const { return width_; }
  int height() const { return height_; }
  int node_count() const { return width_ * height_; }

  /// Directional ports per router (4 for mesh/torus, 2 for ring).
  int radix() const;
  /// Index of the local (ejection/injection) port.
  int local_port() const { return radix(); }
  /// Total ports per router including local.
  int port_count() const { return radix() + 1; }

  Coord coords(NodeId n) const;
  NodeId node_at(Coord c) const;
  bool valid_node(NodeId n) const { return n >= 0 && n < node_count(); }

  /// Neighbor through directional port `dir`; kInvalidNode at a mesh edge.
  NodeId neighbor(NodeId n, int dir) const;

  /// Port on the neighbor that a flit leaving `n` through `dir` arrives on
  /// (the opposite direction).
  static int opposite(int dir);

  /// Minimal hop count between two nodes under this topology.
  int distance(NodeId a, NodeId b) const;

  /// Average minimal distance over all src!=dst pairs (analytical checks).
  double mean_distance() const;

  std::string describe() const;

  bool operator==(const Topology&) const = default;

 private:
  Topology(Kind kind, int width, int height);

  Kind kind_;
  int width_;
  int height_;
};

}  // namespace sctm::noc
