// Replay-session bench: fresh construction vs the reset/reuse protocol.
//
// Replays one captured trace per network kind two ways: "fresh" pays the
// original engine's cost (build a Simulator + network + every pass buffer,
// run one pass, tear it all down — what replay_once() does) while "session"
// runs the same pass on one long-lived ReplaySession recycled through
// Simulator::reset() + Network::reset(). The per-pass wall-time ratio is the
// price of construction the reset protocol eliminates; exploration and the
// iterative engine pay it per pass, so it multiplies.
//
// Emits bench_results/BENCH_replay_session.json and exits non-zero if the
// session schedule is not bit-identical to fresh construction or a session
// pass is slower than a fresh pass. `--smoke` runs a reduced configuration
// for CI.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/json.hpp"
#include "common/run_metrics.hpp"
#include "core/replay_session.hpp"

namespace sctm {
namespace {

/// Best-of-N wall time of fn, in seconds.
double best_seconds(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct KindResult {
  std::string name;
  double fresh_s = 0;       // one replay_once(): build + pass + teardown
  double session_s = 0;     // one warmed run_pass(): reset + pass
  double speedup = 0;       // fresh_s / session_s
  std::uint64_t events = 0; // kernel events per pass
  bool identical = false;   // session schedule == fresh schedule
};

KindResult measure(const std::string& name, const core::ReplayTrace& rt,
                   const core::NetSpec& spec, int reps) {
  const core::ReplayConfig cfg;
  KindResult out;
  out.name = name;

  const core::ReplayResult fresh =
      core::replay_once(rt, core::make_factory(spec), cfg);
  out.fresh_s = best_seconds(reps, [&] {
    core::replay_once(rt, core::make_factory(spec), cfg);
  });

  core::ReplaySession session(rt, core::make_factory(spec), cfg);
  session.run_pass();  // warmup: size every retained-capacity structure
  session.run_pass();
  out.session_s = best_seconds(reps, [&] { session.run_pass(); });

  const core::ReplayResult& reused = session.result();
  out.identical = reused.inject_time == fresh.inject_time &&
                  reused.arrive_time == fresh.arrive_time &&
                  reused.runtime == fresh.runtime;
  out.events = reused.events;
  out.speedup = out.session_s > 0 ? out.fresh_s / out.session_s : 0.0;
  return out;
}

int run(bool smoke) {
  fullsys::AppParams app;
  app.name = "fft";
  app.cores = 16;
  app.lines_per_core = 16;
  app.iterations = smoke ? 1 : 4;
  const auto exec = core::run_execution(app, bench::enoc_spec(), {});
  const core::ReplayTrace rt(exec.trace);
  const int reps = smoke ? 5 : 15;

  std::vector<KindResult> results;
  results.push_back(measure("ideal", rt, bench::ideal_spec(1), reps));
  results.push_back(measure("enoc", rt, bench::enoc_spec(), reps));
  results.push_back(measure("onoc-token", rt, bench::onoc_token_spec(), reps));

  Table table("replay pass cost: fresh construction vs session reset/reuse");
  table.set_header({"network", "records", "fresh ms/pass", "reset ms/pass",
                    "speedup", "events/pass"});
  for (const KindResult& r : results) {
    table.add_row({r.name, std::to_string(rt.size()),
                   Table::fmt(r.fresh_s * 1e3, 3),
                   Table::fmt(r.session_s * 1e3, 3),
                   Table::fmt(r.speedup, 2), std::to_string(r.events)});
  }

  RunMetrics m = bench::bench_metrics(table, "BENCH_replay_session");
  m.manifest.set("trace", core::trace_id(rt));
  m.manifest.set("reps", static_cast<std::int64_t>(reps));
  {
    JsonWriter results_j;
    results_j.begin_object();
    results_j.key("table");
    write_table_json(results_j, table);
    results_j.key("networks");
    results_j.begin_array();
    for (const KindResult& r : results) {
      results_j.begin_object();
      results_j.key("network");
      results_j.value(r.name);
      results_j.key("fresh_pass_seconds");
      results_j.value(r.fresh_s);
      results_j.key("session_pass_seconds");
      results_j.value(r.session_s);
      results_j.key("speedup");
      results_j.value(r.speedup);
      results_j.key("events_per_pass");
      results_j.value(static_cast<std::uint64_t>(r.events));
      results_j.key("bit_identical");
      results_j.value(r.identical);
      results_j.end_object();
    }
    results_j.end_array();
    results_j.key("bars");
    results_j.begin_array();
    for (const KindResult& r : results) {
      results_j.begin_object();
      results_j.key("name");
      results_j.value("session_speedup_" + r.name);
      results_j.key("value");
      results_j.value(r.speedup);
      results_j.key("floor");
      results_j.value(1.0);
      results_j.end_object();
    }
    results_j.end_array();
    results_j.end_object();
    m.set_results_json(std::move(results_j).str());
  }
  bench::emit(table, "BENCH_replay_session", m);

  int rc = 0;
  for (const KindResult& r : results) {
    rc |= bench::verdict(r.identical,
                         r.name + ": session schedule bit-identical to fresh");
    rc |= bench::verdict(r.speedup >= 1.0,
                         r.name + ": reset pass no slower than fresh pass");
  }
  return rc;
}

}  // namespace
}  // namespace sctm

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return sctm::run(smoke);
}
