#include "fullsys/barrier.hpp"

#include <stdexcept>

namespace sctm::fullsys {

BarrierManager::BarrierManager(Simulator& sim, std::string name, NodeId home,
                               int cores, Cycle release_latency,
                               Fabric& fabric)
    : Component(sim, std::move(name)),
      home_(home),
      cores_(cores),
      release_latency_(release_latency),
      fabric_(fabric),
      arrived_(static_cast<std::size_t>(cores), false),
      stat_epochs_(counter("epochs")) {}

void BarrierManager::on_arrive(NodeId src, MsgId msg_id) {
  if (arrived_[static_cast<std::size_t>(src)]) {
    throw std::logic_error(name() + ": double barrier arrival from core " +
                           std::to_string(src));
  }
  arrived_[static_cast<std::size_t>(src)] = true;
  arrivals_.push_back(msg_id);
  if (static_cast<int>(arrivals_.size()) < cores_) return;

  ++stat_epochs_;
  std::vector<MsgId> causes = std::move(arrivals_);
  arrivals_.clear();
  arrived_.assign(arrived_.size(), false);
  sim().schedule_in(release_latency_,
                    [this, causes = std::move(causes)] {
                      for (NodeId c = 0; c < cores_; ++c) {
                        fabric_.send(ProtoMsg::kBarRelease, home_, c, 0, causes);
                      }
                    });
}

}  // namespace sctm::fullsys
